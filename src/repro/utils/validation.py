"""Parameter validation helpers.

All model constructors validate their inputs eagerly so that a bad
parameter fails at construction time with a clear message, rather than
surfacing later as a NaN deep inside a solver.  Every helper returns
the (possibly coerced) value so it can be used inline::

    self.alpha = check_in_range(alpha, "alpha", 0.0, 1.0)
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.exceptions import NumericalHealthError, ParameterError


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite number.

    Parameters
    ----------
    value:
        The number to validate.
    name:
        Parameter name used in the error message.
    strict:
        When true (default) require ``value > 0``; otherwise allow 0.
    """
    value = _check_finite_number(value, name)
    if strict and value <= 0:
        raise ParameterError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ParameterError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    inclusive_low: bool = False,
    inclusive_high: bool = False,
) -> float:
    """Validate that ``value`` lies in the interval (low, high).

    Endpoint inclusion is controlled by ``inclusive_low``/``inclusive_high``.
    """
    value = _check_finite_number(value, name)
    low_ok = value >= low if inclusive_low else value > low
    high_ok = value <= high if inclusive_high else value < high
    if not (low_ok and high_ok):
        lo_br = "[" if inclusive_low else "("
        hi_br = "]" if inclusive_high else ")"
        raise ParameterError(
            f"{name} must be in {lo_br}{low}, {high}{hi_br}, got {value!r}"
        )
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return check_in_range(
        value, name, 0.0, 1.0, inclusive_low=True, inclusive_high=True
    )


def check_integer(
    value: int,
    name: str,
    *,
    minimum: Optional[int] = None,
    maximum: Optional[int] = None,
) -> int:
    """Validate that ``value`` is an integer within optional bounds.

    Accepts anything that equals its own ``int()`` conversion (so numpy
    integer scalars and float-valued whole numbers pass), and returns a
    plain Python ``int``.
    """
    try:
        as_int = int(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be an integer, got {value!r}") from exc
    if isinstance(value, float) and not value.is_integer():
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    if as_int != value:
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    if minimum is not None and as_int < minimum:
        raise ParameterError(f"{name} must be >= {minimum}, got {as_int}")
    if maximum is not None and as_int > maximum:
        raise ParameterError(f"{name} must be <= {maximum}, got {as_int}")
    return as_int


def check_nonnegative_array(values: object, name: str) -> np.ndarray:
    """Validate a non-empty 1-D array of finite, non-negative numbers.

    Used for buffer-size grids and similar sweep inputs so a bad grid
    fails at the API boundary with the offending parameter named,
    instead of deep inside a simulator loop.  Returns a float array.
    """
    try:
        arr = np.asarray(values, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ParameterError(
            f"{name} must be an array of numbers, got {values!r}"
        ) from exc
    if arr.ndim != 1 or arr.size == 0:
        raise ParameterError(
            f"{name} must be a non-empty 1-D array, got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ParameterError(f"{name} must contain only finite values")
    if np.any(arr < 0):
        raise ParameterError(
            f"{name} must be >= 0 everywhere, got minimum {float(arr.min())!r}"
        )
    return arr


def check_simulation_health(
    lost: object, arrived: object, *, context: str = ""
) -> None:
    """Reject numerically unhealthy loss/arrival counts.

    A NaN or infinite cell count anywhere in a replication silently
    poisons every pooled estimate downstream (ratio-of-sums CLR,
    confidence intervals), and a negative count means the recursion
    itself went wrong.  Raises :class:`NumericalHealthError` naming
    the offending quantity; ``context`` prefixes the message (e.g.
    ``"replication 47"``).
    """
    lost_arr = np.asarray(lost, dtype=float)
    problems = []
    if not np.all(np.isfinite(lost_arr)):
        problems.append("non-finite (NaN/inf) lost-cell count")
    elif lost_arr.size and float(lost_arr.min()) < 0:
        problems.append(f"negative lost-cell count ({float(lost_arr.min())!r})")
    try:
        arrived_f = float(arrived)
    except (TypeError, ValueError):
        problems.append(f"non-numeric arrived-cell count ({arrived!r})")
    else:
        if math.isnan(arrived_f) or math.isinf(arrived_f):
            problems.append(f"non-finite arrived-cell count ({arrived_f!r})")
        elif arrived_f < 0:
            problems.append(f"negative arrived-cell count ({arrived_f!r})")
    if problems:
        prefix = f"{context}: " if context else ""
        raise NumericalHealthError(
            prefix + "; ".join(problems) + " — the simulation output is "
            "numerically unhealthy and would poison pooled estimates"
        )


def _check_finite_number(value: float, name: str) -> float:
    """Coerce ``value`` to float, rejecting NaN/inf/non-numerics."""
    try:
        as_float = float(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be a number, got {value!r}") from exc
    if math.isnan(as_float) or math.isinf(as_float):
        raise ParameterError(f"{name} must be finite, got {value!r}")
    return as_float
