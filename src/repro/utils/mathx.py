"""Small mathematical helpers shared across models and core analysis.

Named ``mathx`` to avoid shadowing the standard-library :mod:`math`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def second_central_difference(k: ArrayLike, exponent: float) -> np.ndarray:
    """Second central difference ``nabla^2(k^exponent)`` used by exact-LRD ACFs.

    Computes ``(k+1)^e - 2 k^e + |k-1|^e`` elementwise.  This is the
    operator from Eq. (2) of the paper: the autocorrelation of an exact
    LRD process is ``r(k) = (g/2) * nabla^2(k^{2H})``.

    ``k`` may be scalar or array; values must be >= 1 for the formula to
    be meaningful (``|k-1|`` keeps k = 1 well-defined: ``0^e = 0``).
    """
    k_arr = np.asarray(k, dtype=float)
    if np.any(k_arr < 1):
        raise ValueError("second_central_difference requires k >= 1")
    return (
        (k_arr + 1.0) ** exponent
        - 2.0 * k_arr**exponent
        + np.abs(k_arr - 1.0) ** exponent
    )


def kappa(hurst: float) -> float:
    """``kappa(H) = H^H (1-H)^{1-H}`` from the paper's Eq. (6).

    Appears in the Weibull approximation of the buffer overflow
    probability for Gaussian exact-LRD sources.  Defined for
    0 < H < 1; continuous limits at the endpoints equal 1.
    """
    if not 0.0 < hurst < 1.0:
        raise ValueError(f"kappa(H) requires 0 < H < 1, got {hurst}")
    return hurst**hurst * (1.0 - hurst) ** (1.0 - hurst)


def weighted_tail_sum(acf: np.ndarray, m: int) -> float:
    """``sum_{i=1}^{m-1} (m - i) * r(i)`` — the cross-term of Var(sum).

    ``acf`` must contain r(1), r(2), ... (lag-0 excluded) with length
    at least ``m - 1``.  Used by the generic variance-time computation
    V(m) = sigma^2 [m + 2 * weighted_tail_sum(r, m)].
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if m == 1:
        return 0.0
    r = np.asarray(acf, dtype=float)
    if r.shape[0] < m - 1:
        raise ValueError(
            f"need at least {m - 1} autocorrelations, got {r.shape[0]}"
        )
    lags = np.arange(1, m)
    return float(np.dot(m - lags, r[: m - 1]))


def geometric_weighted_tail_sum(a: float, m: ArrayLike) -> np.ndarray:
    """Closed form of ``sum_{i=1}^{m-1} (m - i) a^i`` for geometric ACFs.

    Equals ``a * (m (1 - a) - (1 - a^m)) / (1 - a)^2`` for ``a != 1``
    and ``m (m - 1) / 2`` for ``a == 1``.  Vectorized over ``m``; used
    by the AR(1)/DAR(1) variance-time closed forms, which keeps the
    Bahadur-Rao infimum search O(1) per ``m`` instead of requiring a
    cumulative ACF sum.
    """
    m_arr = np.asarray(m, dtype=float)
    if np.any(m_arr < 1):
        raise ValueError("m must be >= 1")
    if a == 1.0:
        return m_arr * (m_arr - 1.0) / 2.0
    # Integer exponents keep negative bases (anti-persistent AR(1)) exact;
    # numpy returns NaN for negative**float.
    a_pow_m = np.power(a, np.round(m_arr).astype(np.int64))
    return a * (m_arr * (1.0 - a) - (1.0 - a_pow_m)) / (1.0 - a) ** 2
