"""Unit conversions between the paper's working units and SI.

The paper works in *cells/frame* for rates and sizes and reports buffer
sizes as the *maximum queueing delay in milliseconds*.  The conversion
pivot is: a multiplexer serving ``N`` sources at ``c`` cells/frame per
source drains ``N * c / T_s`` cells per second, so a buffer of ``B``
cells imposes a maximum delay of ``B * T_s / (N * c)`` seconds.
"""

from __future__ import annotations

from repro.constants import ATM_CELL_BITS, FRAME_DURATION
from repro.utils.validation import check_positive


def delay_to_buffer_cells(
    delay_seconds: float,
    service_cells_per_frame: float,
    frame_duration: float = FRAME_DURATION,
) -> float:
    """Convert a maximum queueing delay to a buffer size in cells.

    ``service_cells_per_frame`` is the *total* service rate C (for a
    per-source view pass ``c`` and get the per-source buffer ``b``).
    """
    check_positive(delay_seconds, "delay_seconds", strict=False)
    check_positive(service_cells_per_frame, "service_cells_per_frame")
    check_positive(frame_duration, "frame_duration")
    return delay_seconds * service_cells_per_frame / frame_duration


def buffer_cells_to_delay(
    buffer_cells: float,
    service_cells_per_frame: float,
    frame_duration: float = FRAME_DURATION,
) -> float:
    """Convert a buffer size in cells to the maximum queueing delay (sec)."""
    check_positive(buffer_cells, "buffer_cells", strict=False)
    check_positive(service_cells_per_frame, "service_cells_per_frame")
    check_positive(frame_duration, "frame_duration")
    return buffer_cells * frame_duration / service_cells_per_frame


def cells_per_frame_to_mbps(
    cells_per_frame: float, frame_duration: float = FRAME_DURATION
) -> float:
    """Convert a rate in cells/frame into megabits/sec (53-byte cells)."""
    check_positive(cells_per_frame, "cells_per_frame", strict=False)
    check_positive(frame_duration, "frame_duration")
    return cells_per_frame * ATM_CELL_BITS / frame_duration / 1e6


def mbps_to_cells_per_frame(
    mbps: float, frame_duration: float = FRAME_DURATION
) -> float:
    """Convert a rate in megabits/sec into cells/frame (53-byte cells)."""
    check_positive(mbps, "mbps", strict=False)
    check_positive(frame_duration, "frame_duration")
    return mbps * 1e6 * frame_duration / ATM_CELL_BITS
