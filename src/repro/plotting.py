"""Dependency-free ASCII line charts for experiment results.

The reproduction environment is intentionally lean (numpy/scipy only),
so the figures are rendered as Unicode scatter/line charts on a
character grid — enough to *see* the orderings and crossovers the
paper's figures communicate, directly in a terminal or log file.

Used by the experiment runner (``--plot``) and available for ad-hoc
use::

    from repro.plotting import ascii_plot
    print(ascii_plot([("Z", x, y1), ("DAR(1)", x, y2)]))
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

#: Distinct glyphs assigned to series, in order.
SERIES_GLYPHS = "ox+*#@%&"


def ascii_plot(
    series: Sequence[Tuple[str, np.ndarray, np.ndarray]],
    *,
    width: int = 72,
    height: int = 20,
    x_label: str = "",
    y_label: str = "",
    logx: bool = False,
) -> str:
    """Render labeled (x, y) series on a character grid.

    Parameters
    ----------
    series:
        Tuples of (label, x, y).  Non-finite y values are skipped.
    width, height:
        Plot-area size in characters.
    logx:
        Plot against log10(x) (x must then be positive).

    Returns the chart as a multi-line string (no trailing newline).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")

    prepared = []
    for label, x, y in series:
        x_arr = np.asarray(x, dtype=float)
        y_arr = np.asarray(y, dtype=float)
        if x_arr.shape != y_arr.shape:
            raise ValueError(f"series {label!r}: shape mismatch")
        keep = np.isfinite(y_arr) & np.isfinite(x_arr)
        if logx:
            keep &= x_arr > 0
        x_arr, y_arr = x_arr[keep], y_arr[keep]
        if logx:
            x_arr = np.log10(x_arr)
        prepared.append((label, x_arr, y_arr))

    non_empty = [p for p in prepared if p[1].size]
    if not non_empty:
        return "(no finite data to plot)"
    xs = np.concatenate([p[1] for p in non_empty])
    ys = np.concatenate([p[2] for p in non_empty])
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, x_arr, y_arr) in enumerate(prepared):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for xv, yv in zip(x_arr, y_arr):
            column = int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((yv - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][column] = glyph

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    top_tick = f"{y_hi:.3g}"
    bottom_tick = f"{y_lo:.3g}"
    margin = max(len(top_tick), len(bottom_tick)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_tick.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_tick.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * margin + "+" + "-" * width)
    left = f"{10**x_lo:.3g}" if logx else f"{x_lo:.3g}"
    right = f"{10**x_hi:.3g}" if logx else f"{x_hi:.3g}"
    axis = left.ljust(width // 2) + right.rjust(width - width // 2)
    lines.append(" " * (margin + 1) + axis)
    if x_label:
        lines.append(" " * (margin + 1) + x_label.center(width))
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {label}"
        for i, (label, _x, _y) in enumerate(prepared)
    )
    lines.append("  legend: " + legend)
    return "\n".join(lines)


def plot_panel(panel, *, logx: bool = False, **kwargs) -> str:
    """Render one :class:`~repro.experiments.result.Panel` as ASCII."""
    series = [(s.label, s.x, s.y) for s in panel.series]
    return ascii_plot(
        series,
        x_label=panel.x_label,
        y_label=f"{panel.name}   [{panel.y_label}]",
        logx=logx,
        **kwargs,
    )
