"""Open-loop rho-driven load against the sharded admission frontend.

The M/G/k harness of ``emcrisostomo/latency-simulation`` (PAPERS.md)
is the exemplar this module transplants to connection admission
control: pick the *utilization* rho as the control variable, derive
the open-loop arrival rate from it, sweep rho toward (and past) 1,
and chart what the tail does.  For a link whose offline boundary
admits ``N`` connections of mean holding time ``tau``, offered load
``a = rho * N`` Erlangs requires arrival rate ``lambda = rho * N /
tau`` (:func:`derive_arrival_rate`) — so ``rho = 1`` offers exactly
the admissible boundary and ``rho > 1`` drives the service into its
documented overload regime (``docs/ROBUSTNESS.md``).

Execution is the frontend's sharded data plane, open-loop:

* links are placed on shards by the same
  :class:`~repro.service.frontend.ConsistentHashRing` the frontend
  serves from;
* each shard runs as one task on the :mod:`repro.parallel` backends —
  the PR-8 warm worker pool for ``jobs > 1`` — and builds its engines
  from the decision-table snapshot published **once** through
  :mod:`repro.parallel.shm` (no locks, no pickled tables);
* every link keeps its own ``SeedSequence``-spawned stream and its
  own per-link overload state, so the admitted/blocked/shed/fallback
  counters of a link are **byte-identical** to a
  :func:`repro.service.replay.replay_link` run of the same spec on
  the same seed — and independent of the shard count and ``jobs``
  (the PR-7 backpressure contract, preserved under sharding);
* admit latency lands in the ``service.admit_latency_ns``
  :class:`~repro.obs.sketch.QuantileSketch` (aggregate and per link),
  merged across shards in shard-index order, from which each sweep
  point reports p50/p99/p999.

``runner drive`` is the CLI (:mod:`repro.service.frontend_cli`); CI's
``frontend-smoke`` job drives 100k requests across 4 links and gates
the recorded throughput through ``obs compare``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import heapq

import numpy as np

from repro.atm.qos import QoSRequirement
from repro.exceptions import ParameterError
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.obs import tracectx as _tracectx
from repro.obs.sketch import QuantileSketch
from repro.obs.spans import span
from repro.parallel.backends import (
    Backend,
    ProcessPoolBackend,
    resolve_backend,
)
from repro.parallel.shm import attach_blob, publish_blob
from repro.parallel.worker import (
    WorkerPayload,
    execute_payload,
    merge_result_telemetry,
)
from repro.service.engine import REASON_SHED, AdmissionEngine
from repro.service.frontend import ConsistentHashRing
from repro.service.overload import OverloadPolicy
from repro.service.tables import (
    EFFECTIVE_BANDWIDTH_METHOD,
    SERVICE_METHODS,
    DecisionTableCache,
)
from repro.service.workload import (
    ConnectionClass,
    WorkloadSpec,
    generate_workload,
)
from repro.utils.rng import spawn_generators
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "DrivePoint",
    "DriveReport",
    "ShardDriveStats",
    "derive_arrival_rate",
    "drive",
]

#: The quantiles every sweep point reports (matches ``obs sweep``).
DRIVE_QUANTILES = (0.5, 0.99, 0.999)


def derive_arrival_rate(
    rho: float, admissible: int, mean_holding_time: float
) -> float:
    """The open-loop arrival rate offering ``rho x admissible`` Erlangs.

    Classical Erlang bookkeeping: offered load ``a = lambda * tau``
    connections, so utilization ``rho = a / N`` of a boundary that
    admits ``N`` requires ``lambda = rho * N / tau``.  Exact by
    construction — the property suite asserts
    ``WorkloadSpec.offered_erlangs == rho * N`` to float precision
    for every holding-time law.
    """
    check_positive(rho, "rho")
    admissible = check_integer(admissible, "admissible", minimum=1)
    check_positive(mean_holding_time, "mean_holding_time")
    return rho * admissible / mean_holding_time


@dataclass(frozen=True)
class ShardDriveStats:
    """Measured outcome of one shard's open-loop drive."""

    shard_index: int
    n_links: int
    n_requests: int
    admitted: int
    blocked: int
    shed: int
    fallbacks: int
    boundary_violations: int
    peak_occupancy: int
    #: Wall-clock the shard spent in its decision loop.
    elapsed_seconds: float

    @property
    def decisions_per_second(self) -> float:
        return (
            self.n_requests / self.elapsed_seconds
            if self.elapsed_seconds
            else 0.0
        )

    # -- flat transport through WorkerResult arrays --------------------------

    _FIELDS = (
        "n_links",
        "n_requests",
        "admitted",
        "blocked",
        "shed",
        "fallbacks",
        "boundary_violations",
        "peak_occupancy",
        "elapsed_seconds",
    )

    def as_array(self) -> np.ndarray:
        return np.asarray(
            [float(getattr(self, name)) for name in self._FIELDS]
        )

    @classmethod
    def from_array(
        cls, shard_index: int, values: np.ndarray
    ) -> "ShardDriveStats":
        values = np.asarray(values, dtype=float)
        if values.shape != (len(cls._FIELDS),):
            raise ParameterError(
                f"shard-stats vector must have shape "
                f"({len(cls._FIELDS)},), got {values.shape}"
            )
        data = dict(zip(cls._FIELDS, values))
        return cls(
            shard_index=shard_index,
            n_links=int(data["n_links"]),
            n_requests=int(data["n_requests"]),
            admitted=int(data["admitted"]),
            blocked=int(data["blocked"]),
            shed=int(data["shed"]),
            fallbacks=int(data["fallbacks"]),
            boundary_violations=int(data["boundary_violations"]),
            peak_occupancy=int(data["peak_occupancy"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
        )


@dataclass(frozen=True)
class DrivePoint:
    """One rho grid point of the sweep."""

    rho: float
    offered_erlangs: float
    arrival_rate: float
    n_requests: int
    admitted: int
    blocked: int
    shed: int
    fallbacks: int
    boundary_violations: int
    peak_occupancy: int
    #: Wall-clock of the whole parallel region (all shards).
    wall_seconds: float
    #: Aggregate admit decisions per second across shards.
    decisions_per_second: float
    #: p50/p99/p999 admit latency in ns (None when unmeasured).
    admit_latency_ns: Dict[str, Optional[float]]
    shards: Tuple[ShardDriveStats, ...]

    @property
    def blocking_probability(self) -> float:
        return self.blocked / self.n_requests if self.n_requests else 0.0

    @property
    def shed_ratio(self) -> float:
        return self.shed / self.n_requests if self.n_requests else 0.0

    def to_dict(self) -> dict:
        return {
            "rho": self.rho,
            "offered_erlangs": self.offered_erlangs,
            "arrival_rate": self.arrival_rate,
            "n_requests": self.n_requests,
            "admitted": self.admitted,
            "blocked": self.blocked,
            "shed": self.shed,
            "shed_ratio": self.shed_ratio,
            "fallbacks": self.fallbacks,
            "blocking_probability": self.blocking_probability,
            "boundary_violations": self.boundary_violations,
            "peak_occupancy": self.peak_occupancy,
            "wall_seconds": self.wall_seconds,
            "decisions_per_second": self.decisions_per_second,
            "admit_latency_ns": dict(self.admit_latency_ns),
        }


@dataclass(frozen=True)
class DriveReport:
    """The full sweep: configuration plus one point per rho."""

    policy: str
    capacity: float
    n_links: int
    n_shards: int
    requests_per_link: int
    admissible: int
    mean_holding_time: float
    holding: str
    seed: int
    jobs: int
    points: Tuple[DrivePoint, ...]

    @property
    def n_requests(self) -> int:
        return sum(p.n_requests for p in self.points)

    @property
    def boundary_violations(self) -> int:
        return sum(p.boundary_violations for p in self.points)

    def to_dict(self) -> dict:
        """The ``obs sweep``-compatible latency-vs-rho report."""
        return {
            "kind": "latency_vs_rho",
            "source": "frontend_drive",
            "policy": self.policy,
            "capacity_cells_per_frame": self.capacity,
            "links": self.n_links,
            "shards": self.n_shards,
            "requests_per_link": self.requests_per_link,
            "admissible": self.admissible,
            "mean_holding_time": self.mean_holding_time,
            "holding": self.holding,
            "seed": self.seed,
            "jobs": self.jobs,
            "quantile_unit": "ns",
            "boundary_violations": self.boundary_violations,
            "rows": [p.to_dict() for p in self.points],
        }


@dataclass(frozen=True, eq=False)
class _ShardDriveTask:
    """Picklable body of one shard's open-loop drive.

    Carries the shard's links (ids with their global indices and
    pre-spawned generators) and the address of the published table
    snapshot; builds one engine per link — all sharing one cache
    loaded from the snapshot — and processes the shard's merged
    arrival stream through them.
    """

    link_ids: Tuple[str, ...]
    link_generators: Tuple[np.random.Generator, ...]
    classes: Tuple[ConnectionClass, ...]
    spec: WorkloadSpec
    capacity: float
    qos: QoSRequirement
    policy: str
    table_image: Optional[dict] = None
    table_text: Optional[str] = None
    overload: Optional[OverloadPolicy] = None
    #: Optional nonstationary schedule (``repro.adaptive``): regime
    #: switches and diurnal ramps reshape each link's arrival stream
    #: deterministically; ``regime_classes`` is the candidate library
    #: the plan's class names resolve against (defaults to
    #: ``classes``).
    regime_plan: Optional[object] = None
    regime_classes: Optional[Tuple[ConnectionClass, ...]] = None

    def generate(self, link_generator: np.random.Generator):
        """One link's workload — stationary, or reshaped by the plan."""
        if self.regime_plan is None:
            return generate_workload(self.spec, self.classes, link_generator)
        from repro.adaptive.nonstationary import (
            generate_nonstationary_workload,
        )

        return generate_nonstationary_workload(
            self.spec,
            self.classes,
            self.regime_plan,
            self.regime_classes or self.classes,
            link_generator,
        ).workload

    def __call__(self, index: int, generator: np.random.Generator):
        stats = _drive_shard(self, index)
        return stats.as_array(), float(stats.n_requests)


def _drive_shard(task: _ShardDriveTask, shard_index: int) -> ShardDriveStats:
    """Run one shard's decision loop (in a worker or inline)."""
    tables = DecisionTableCache(persist=False)
    if task.table_image is not None:
        tables.load_text(attach_blob(task.table_image).decode("utf-8"))
    elif task.table_text is not None:
        tables.load_text(task.table_text)
    overload_active = task.overload is not None
    count_policy = task.policy != EFFECTIVE_BANDWIDTH_METHOD
    models = [c.model for c in task.classes]

    engines: List[AdmissionEngine] = []
    workload_arrays = []
    for link_id, link_generator in zip(
        task.link_ids, task.link_generators
    ):
        engine = AdmissionEngine(
            policy=task.policy, tables=tables, overload=task.overload
        )
        engine.add_link(link_id, task.capacity, task.qos)
        engines.append(engine)
        workload_arrays.append(task.generate(link_generator))

    n_links = len(task.link_ids)
    if n_links == 0:
        return ShardDriveStats(
            shard_index=shard_index,
            n_links=0,
            n_requests=0,
            admitted=0,
            blocked=0,
            shed=0,
            fallbacks=0,
            boundary_violations=0,
            peak_occupancy=0,
            elapsed_seconds=0.0,
        )

    # Merge the shard's links into one time-ordered open-loop stream.
    # Stable ordering keeps ties deterministic (and per-link order
    # intact, which the per-link byte-identity contract rests on).
    arrivals = np.concatenate(
        [w.arrival_times for w in workload_arrays]
    )
    link_of = np.concatenate(
        [
            np.full(w.n_requests, i, dtype=np.int64)
            for i, w in enumerate(workload_arrays)
        ]
    )
    req_of = np.concatenate(
        [np.arange(w.n_requests, dtype=np.int64) for w in workload_arrays]
    )
    order = np.argsort(arrivals, kind="stable")

    holdings = [w.holding_times for w in workload_arrays]
    labels = [w.class_indices for w in workload_arrays]

    admitted = blocked = shed = fallbacks = 0
    boundary_violations = 0
    peak_occupancy = 0
    departure_heaps: List[list] = [[] for _ in range(n_links)]
    links = [engine.link(link_id)
             for engine, link_id in zip(engines, task.link_ids)]
    heappush = heapq.heappush
    heappop = heapq.heappop

    started = time.perf_counter()
    with span(
        "service.frontend.drive_shard",
        shard=shard_index,
        links=n_links,
        requests=int(arrivals.shape[0]),
        policy=task.policy,
    ):
        for flat in order:
            link_index = int(link_of[flat])
            j = int(req_of[flat])
            now = float(arrivals[flat])
            engine = engines[link_index]
            link_id = task.link_ids[link_index]
            link = links[link_index]
            heap = departure_heaps[link_index]
            while heap and heap[0][0] <= now:
                _, connection_id = heappop(heap)
                engine.release(link_id, connection_id)
            occupancy_before = link.occupancy
            decision = engine.admit(
                link_id,
                models[int(labels[link_index][j])],
                f"c{j}",
                now=now if overload_active else None,
            )
            if decision.reason == REASON_SHED:
                shed += 1
            elif decision.admitted:
                admitted += 1
                if decision.occupancy > peak_occupancy:
                    peak_occupancy = decision.occupancy
                heappush(
                    heap,
                    (now + float(holdings[link_index][j]), f"c{j}"),
                )
            else:
                blocked += 1
            if decision.fallback:
                fallbacks += 1
            if (
                count_policy
                and decision.reason != REASON_SHED
                and not decision.fallback
                and decision.admitted
                != (occupancy_before < decision.admissible)
            ):
                boundary_violations += 1
    elapsed = time.perf_counter() - started

    if _spans._ENABLED:
        _metrics.add("service.frontend.requests", int(arrivals.shape[0]))
        _metrics.add(
            "service.boundary_violations", boundary_violations
        )

    return ShardDriveStats(
        shard_index=shard_index,
        n_links=n_links,
        n_requests=int(arrivals.shape[0]),
        admitted=admitted,
        blocked=blocked,
        shed=shed,
        fallbacks=fallbacks,
        boundary_violations=boundary_violations,
        peak_occupancy=peak_occupancy,
        elapsed_seconds=elapsed,
    )


def _empty_shard_stats(shard_index: int) -> ShardDriveStats:
    """Stats for a shard the ring left without links (no work ran)."""
    return ShardDriveStats(
        shard_index=shard_index,
        n_links=0,
        n_requests=0,
        admitted=0,
        blocked=0,
        shed=0,
        fallbacks=0,
        boundary_violations=0,
        peak_occupancy=0,
        elapsed_seconds=0.0,
    )


def _sketch_quantiles(data: Optional[dict]) -> Dict[str, Optional[float]]:
    if data is None or not data.get("count"):
        return {f"p{q}": None for q in DRIVE_QUANTILES}
    sketch = QuantileSketch.from_dict(data)
    return {f"p{q}": sketch.quantile(q) for q in DRIVE_QUANTILES}


def drive(
    classes: Sequence[ConnectionClass],
    *,
    n_links: int = 1,
    capacity: float,
    qos: Optional[QoSRequirement] = None,
    policy: str = "bahadur-rao",
    rho_grid: Sequence[float] = (0.6, 0.8, 0.9, 0.95, 0.99),
    requests_per_link: int = 10_000,
    mean_holding_time: float = 90.0,
    holding: str = "exponential",
    tail_gamma: float = 1.5,
    n_shards: Optional[int] = None,
    seed: int = 20260806,
    backend: Optional[Backend] = None,
    jobs: Optional[int] = None,
    pool: Optional[str] = None,
    overload: Optional[OverloadPolicy] = None,
    ring_replicas: int = 64,
    table_path=None,
    regime_plan=None,
    regime_classes: Optional[Sequence[ConnectionClass]] = None,
) -> DriveReport:
    """Sweep rho, driving the sharded frontend open-loop at each point.

    For each ``rho`` the arrival rate is derived from the first
    class's offline admissible boundary
    (:func:`derive_arrival_rate`), ``n_links`` independent links are
    placed on ``n_shards`` shards by consistent hashing, and each
    shard's merged request stream runs open-loop through
    engine-per-link admission — on worker processes (the warm pool)
    for ``jobs > 1``, every shard loading its decision tables from
    one shared-memory snapshot.  Per-link decision counters are
    byte-identical to a serial :func:`~repro.service.replay
    .replay_link` of the same spec and independent of ``n_shards`` /
    ``jobs``; latency sketches are merged across shards in
    shard-index order.

    ``n_shards`` defaults to ``jobs`` (or 1): one shard per worker
    keeps every core busy without oversharding the ring.
    """
    n_links = check_integer(n_links, "n_links", minimum=1)
    requests_per_link = check_integer(
        requests_per_link, "requests_per_link", minimum=1
    )
    check_positive(capacity, "capacity")
    check_positive(mean_holding_time, "mean_holding_time")
    if policy not in SERVICE_METHODS:
        raise ParameterError(
            f"unknown admission policy {policy!r}; choose from "
            f"{', '.join(SERVICE_METHODS)}"
        )
    if not classes:
        raise ParameterError("drive needs at least one ConnectionClass")
    rho_grid = tuple(float(r) for r in rho_grid)
    if not rho_grid:
        raise ParameterError("rho_grid must name at least one point")
    for rho in rho_grid:
        if rho <= 0:
            raise ParameterError(f"rho must be > 0, got {rho}")
    qos = qos if qos is not None else QoSRequirement()
    classes = tuple(classes)

    exec_backend = resolve_backend(backend, jobs, pool)
    effective_jobs = 1 if exec_backend is None else exec_backend.jobs
    if n_shards is None:
        n_shards = effective_jobs
    n_shards = check_integer(n_shards, "n_shards", minimum=1)

    # Warm every decision the sweep can need — primary and breaker
    # fallback per class — once, then freeze the table as a snapshot.
    fallback = (
        overload.fallback_method if overload is not None else "peak-rate"
    )
    staging = DecisionTableCache(path=table_path)
    boundary = staging.lookup(classes[0].model, capacity, qos, policy)
    for cls in classes:
        staging.lookup(cls.model, capacity, qos, policy)
        if fallback != policy:
            staging.lookup(cls.model, capacity, qos, fallback)
    admissible = max(boundary.admissible, 1)
    table_text = staging.dump_text()

    ring = ConsistentHashRing(n_shards, replicas=ring_replicas)
    link_ids = [f"link-{i}" for i in range(n_links)]
    shard_links: List[List[int]] = [[] for _ in range(n_shards)]
    for link_index, link_id in enumerate(link_ids):
        shard_links[ring.shard_for(link_id)].append(link_index)

    table_handle = None
    table_image = None
    if isinstance(exec_backend, ProcessPoolBackend):
        table_handle = publish_blob(table_text.encode("utf-8"))
        table_image = table_handle.descriptor

    previously_enabled = _spans.is_enabled()
    _spans.enable()
    telemetry = True
    points: List[DrivePoint] = []
    try:
        with _tracectx.start_trace():
            for rho in rho_grid:
                _spans.reset_spans()
                _metrics.reset_metrics()
                arrival_rate = derive_arrival_rate(
                    rho, admissible, mean_holding_time
                )
                spec = WorkloadSpec(
                    n_requests=requests_per_link,
                    arrival_rate=arrival_rate,
                    mean_holding_time=mean_holding_time,
                    holding=holding,
                    tail_gamma=tail_gamma,
                )
                # Per-LINK streams spawned from the root seed: link i's
                # workload is the same no matter which shard serves it
                # (or how many shards/jobs there are).
                link_generators = spawn_generators(seed, n_links)
                payloads = []
                for shard_index in range(n_shards):
                    members = shard_links[shard_index]
                    if not members:
                        # An unowned shard offers no requests; the
                        # worker health check would (rightly) reject
                        # an empty attempt, so don't ship one.
                        continue
                    task = _ShardDriveTask(
                        link_ids=tuple(link_ids[i] for i in members),
                        link_generators=tuple(
                            link_generators[i] for i in members
                        ),
                        classes=classes,
                        spec=spec,
                        capacity=float(capacity),
                        qos=qos,
                        policy=policy,
                        table_image=table_image,
                        table_text=(
                            None if table_image is not None else table_text
                        ),
                        overload=overload,
                        regime_plan=regime_plan,
                        regime_classes=(
                            None
                            if regime_classes is None
                            else tuple(regime_classes)
                        ),
                    )
                    payloads.append(
                        WorkerPayload(
                            index=shard_index,
                            attempt=0,
                            task=task,
                            generator=link_generators[members[0]],
                            label=f"drive-shard-{shard_index}",
                            telemetry=telemetry,
                            health_check=True,
                        )
                    )
                results: List = [None] * n_shards
                wall_started = time.perf_counter()
                with span(
                    "service.frontend.drive",
                    rho=rho,
                    links=n_links,
                    shards=n_shards,
                    requests=requests_per_link * n_links,
                    jobs=effective_jobs,
                ):
                    if exec_backend is None:
                        for payload in payloads:
                            result = execute_payload(payload)
                            if result.failed:
                                raise result.error
                            results[result.index] = result
                    else:
                        with exec_backend.session() as session:
                            for payload in payloads:
                                session.submit(payload)
                            while session.pending:
                                result = session.next_completed()
                                if result.failed:
                                    raise result.error
                                results[result.index] = result
                        # Merge in shard-index order, not completion
                        # order — sketch state must not depend on which
                        # worker finished first.
                        for result in results:
                            if result is not None:
                                merge_result_telemetry(result)
                wall_seconds = time.perf_counter() - wall_started

                shards = tuple(
                    ShardDriveStats.from_array(i, results[i].lost)
                    if results[i] is not None
                    else _empty_shard_stats(i)
                    for i in range(n_shards)
                )
                snapshot = {
                    d["name"]: d
                    for d in _metrics.snapshot()
                    if d["type"] == "sketch"
                }
                n_requests = sum(s.n_requests for s in shards)
                points.append(
                    DrivePoint(
                        rho=rho,
                        offered_erlangs=rho * admissible,
                        arrival_rate=arrival_rate,
                        n_requests=n_requests,
                        admitted=sum(s.admitted for s in shards),
                        blocked=sum(s.blocked for s in shards),
                        shed=sum(s.shed for s in shards),
                        fallbacks=sum(s.fallbacks for s in shards),
                        boundary_violations=sum(
                            s.boundary_violations for s in shards
                        ),
                        peak_occupancy=max(
                            (s.peak_occupancy for s in shards), default=0
                        ),
                        wall_seconds=wall_seconds,
                        decisions_per_second=(
                            n_requests / wall_seconds
                            if wall_seconds
                            else 0.0
                        ),
                        admit_latency_ns=_sketch_quantiles(
                            snapshot.get("service.admit_latency_ns")
                        ),
                        shards=shards,
                    )
                )
    finally:
        if table_handle is not None:
            table_handle.unlink()
        if not previously_enabled:
            _spans.disable()

    return DriveReport(
        policy=policy,
        capacity=float(capacity),
        n_links=n_links,
        n_shards=n_shards,
        requests_per_link=requests_per_link,
        admissible=admissible,
        mean_holding_time=float(mean_holding_time),
        holding=holding,
        seed=int(seed),
        jobs=effective_jobs,
        points=tuple(points),
    )
