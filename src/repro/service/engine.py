"""The event-driven admission-control engine.

An :class:`AdmissionEngine` is the operational form of the paper's
motivating application: it holds the admitted-connection mix of one or
more links and answers ``admit()`` / ``release()`` queries online,
delegating every capacity question to a
:class:`~repro.service.tables.DecisionTableCache` so the per-request
cost is a cache probe, not a Bahadur-Rao inversion.

Two admission disciplines:

* **count policies** (``peak-rate``, ``mean-rate``, ``bahadur-rao``,
  ``large-n``) — the link carries one homogeneous class and a request
  is admitted while the occupancy is below the offline admissible N
  for that (model, capacity, QoS, policy).  Mixing classes under a
  count policy is a configuration error and raises
  :class:`~repro.exceptions.ParameterError`.
* **effective-bandwidth** — each class is charged its CTS effective
  bandwidth ``e_i`` (the paper's resolution of the "infinite effective
  bandwidth of LRD sources" myth) and a request is admitted while
  ``sum of admitted e_i + e_new <= C``.  This is the policy that
  serves heterogeneous mixes.

Telemetry (when :mod:`repro.obs` is enabled): ``service.admitted`` /
``service.blocked`` / ``service.released`` counters, a
``service.admit_latency_ns`` quantile sketch (aggregate and per
link), a per-link ``service.occupancy.<link>`` sketch, plus the table
cache's
``service.table_hits`` / ``service.table_misses``.  Disabled, each
admit pays a single boolean check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.atm.cac import PEAK_SIGMA
from repro.atm.qos import QoSRequirement
from repro.exceptions import ParameterError, ReproError
from repro.models.base import TrafficModel
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.service.overload import OverloadPolicy, OverloadState
from repro.service.tables import (
    EFFECTIVE_BANDWIDTH_METHOD,
    SERVICE_METHODS,
    DecisionTableCache,
    decision_key,
    model_fingerprint,
)
from repro.utils.validation import check_positive

__all__ = ["AdmissionDecision", "AdmissionEngine", "LinkState"]

#: Blocked/admitted reasons reported on every decision.
REASON_ADMITTED = "admitted"
REASON_CAPACITY = "capacity"
#: The request was load-shed before any capacity question was asked.
REASON_SHED = "shed"


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission query.

    ``occupancy`` is the connection count on the link *after* the
    decision took effect; ``admissible`` is the table boundary the
    decision was checked against (the homogeneous maximum N).
    """

    admitted: bool
    link_id: str
    connection_id: str
    policy: str
    reason: str
    admissible: int
    occupancy: int
    effective_bandwidth: Optional[float] = None
    #: True when the breaker served this decision from the fallback
    #: policy instead of the configured primary.
    fallback: bool = False


@dataclass(frozen=True)
class _Connection:
    """Book-keeping for one admitted connection."""

    fingerprint: str
    mean: float
    effective_bandwidth: Optional[float]


@dataclass
class LinkState:
    """Mutable admitted-mix state of one link."""

    link_id: str
    capacity: float
    qos: QoSRequirement
    connections: Dict[str, _Connection] = field(default_factory=dict)
    class_counts: Dict[str, int] = field(default_factory=dict)
    #: Sum of admitted effective bandwidths (effective-bandwidth policy).
    admitted_bandwidth: float = 0.0
    #: Sum of admitted mean rates (cells/frame) — the carried load.
    admitted_mean_load: float = 0.0

    @property
    def occupancy(self) -> int:
        """Number of currently admitted connections."""
        return len(self.connections)


class AdmissionEngine:
    """Per-link admission control served from cached decision tables.

    Parameters
    ----------
    policy:
        One of :data:`~repro.service.tables.SERVICE_METHODS`.
    tables:
        The decision-table cache to consult; a fresh private cache by
        default.  Sharing one cache across engines shares the computed
        tables (and their hit/miss accounting).
    overload:
        Optional :class:`~repro.service.overload.OverloadPolicy`.
        When set (and ``admit`` is given the arrival time) requests
        past the bounded decision queue are shed, and primary-lookup
        failures trip a circuit breaker that serves the conservative
        fallback policy instead of taking the shard down.  Without it
        the engine keeps its legacy fail-fast semantics.
    """

    def __init__(
        self,
        policy: str = "bahadur-rao",
        *,
        tables: Optional[DecisionTableCache] = None,
        overload: Optional[OverloadPolicy] = None,
    ):
        if policy not in SERVICE_METHODS:
            raise ParameterError(
                f"unknown admission policy {policy!r}; choose from "
                f"{', '.join(SERVICE_METHODS)}"
            )
        self.policy = policy
        self.tables = tables if tables is not None else DecisionTableCache()
        self.overload = (
            OverloadState(overload) if overload is not None else None
        )
        self._links: Dict[str, LinkState] = {}
        # Admission hot-path caches.  Serializing a decision key (model
        # fingerprint + QoS/capacity float hexes) per request dominates
        # the admit cost once the table itself is warm, and the key for
        # a (model, link, method) never changes while the link exists —
        # so it is built once per link, not once per request.  Models
        # are kept strongly referenced so the ``id()`` keys stay valid.
        self._decision_keys: Dict[tuple, str] = {}
        self._fingerprints: Dict[int, str] = {}
        self._key_refs: Dict[int, TrafficModel] = {}

    # -- topology ------------------------------------------------------------

    def add_link(
        self,
        link_id: str,
        capacity: float,
        qos: Optional[QoSRequirement] = None,
    ) -> LinkState:
        """Register a link (capacity in cells/frame) and return its state."""
        check_positive(capacity, "capacity")
        if link_id in self._links:
            raise ParameterError(f"link {link_id!r} already registered")
        state = LinkState(
            link_id=link_id,
            capacity=float(capacity),
            qos=qos if qos is not None else QoSRequirement(),
        )
        self._links[link_id] = state
        return state

    def link(self, link_id: str) -> LinkState:
        try:
            return self._links[link_id]
        except KeyError:
            raise ParameterError(
                f"unknown link {link_id!r}; registered: "
                f"{sorted(self._links)}"
            ) from None

    @property
    def links(self) -> Dict[str, LinkState]:
        """Read-only view of registered links (do not mutate)."""
        return dict(self._links)

    # -- hot-path caches -----------------------------------------------------

    def _decision_key(
        self, model: TrafficModel, link: LinkState, method: str
    ) -> str:
        cache_key = (id(model), link.link_id, method)
        key = self._decision_keys.get(cache_key)
        if key is None:
            key = decision_key(model, link.capacity, link.qos, method)
            self._decision_keys[cache_key] = key
            self._key_refs[id(model)] = model
        return key

    def _fingerprint_for(self, model: TrafficModel) -> str:
        fingerprint = self._fingerprints.get(id(model))
        if fingerprint is None:
            fingerprint = model_fingerprint(model)
            self._fingerprints[id(model)] = fingerprint
            self._key_refs[id(model)] = model
        return fingerprint

    def invalidate_decision_caches(self) -> None:
        """Drop every memoized decision key and model fingerprint.

        The hot-path caches are keyed by ``id(model)`` and pinned by
        strong references, which is sound only while the engine's
        world stays put.  Journal recovery breaks that premise: it
        swaps link state and table entries wholesale, and the model
        objects a recovered attempt admits against are *new* Python
        objects — if a stale cache entry survived recovery and a new
        model landed on a recycled ``id()``, the engine would serve
        decisions against the dead model's fingerprint.  Recovery
        (:meth:`restore_link_state`) therefore invalidates the caches;
        the next admit per (model, link, method) re-derives its key
        once and re-warms.
        """
        self._decision_keys.clear()
        self._fingerprints.clear()
        self._key_refs.clear()

    # -- the service surface -------------------------------------------------

    def admit(
        self,
        link_id: str,
        model: TrafficModel,
        connection_id: str,
        *,
        now: Optional[float] = None,
        force_fallback: bool = False,
    ) -> AdmissionDecision:
        """Decide one connection request against the link's free capacity.

        ``now`` is the request's arrival time on the workload clock;
        with an overload policy configured it drives the bounded
        decision queue (omitted, nothing is ever shed).
        ``force_fallback`` serves the decision from the fallback
        policy unconditionally — journal recovery uses it to re-apply
        a decision that was originally made while the breaker was
        open, without re-raising the fault that opened it.
        """
        enabled = _spans._ENABLED
        started = time.perf_counter_ns() if enabled else 0
        link = self.link(link_id)
        if connection_id in link.connections:
            raise ParameterError(
                f"connection {connection_id!r} already admitted on "
                f"link {link_id!r}"
            )
        overload = self.overload
        if (
            overload is not None
            and now is not None
            and not overload.queue.offer(float(now))
        ):
            # Shed before any table work: overload protection must not
            # cost a lookup per rejected request.
            if enabled:
                _metrics.add("service.shed")
                _metrics.observe_sketch(
                    f"service.occupancy.{link_id}", link.occupancy
                )
            return AdmissionDecision(
                admitted=False,
                link_id=link_id,
                connection_id=connection_id,
                policy=self.policy,
                reason=REASON_SHED,
                admissible=-1,
                occupancy=link.occupancy,
                effective_bandwidth=None,
            )

        decision = None
        fallback = bool(force_fallback)
        if not fallback:
            if overload is not None:
                if overload.breaker.allow_primary():
                    try:
                        decision = self.tables.lookup(
                            model,
                            link.capacity,
                            link.qos,
                            self.policy,
                            key=self._decision_key(model, link, self.policy),
                        )
                    except ReproError:
                        opened = overload.breaker.record_failure()
                        fallback = True
                        if enabled:
                            _metrics.add("service.table_lookup_failures")
                            if opened:
                                _metrics.add("service.breaker_opened")
                    else:
                        if overload.breaker.record_success() and enabled:
                            _metrics.add("service.breaker_recovered")
                else:
                    fallback = True
            else:
                # Legacy fail-fast path: no breaker, lookup errors
                # propagate to the caller.
                decision = self.tables.lookup(
                    model,
                    link.capacity,
                    link.qos,
                    self.policy,
                    key=self._decision_key(model, link, self.policy),
                )
        if fallback:
            fallback_method = (
                overload.policy.fallback_method
                if overload is not None
                else "peak-rate"
            )
            decision = self.tables.lookup(
                model,
                link.capacity,
                link.qos,
                fallback_method,
                key=self._decision_key(model, link, fallback_method),
            )
            if overload is not None:
                overload.fallback_total += 1
            if enabled:
                _metrics.add("service.fallback_decisions")

        fingerprint = self._fingerprint_for(model)
        bandwidth = decision.effective_bandwidth
        if fallback:
            # The fallback boundary is a peak-allocation count: total
            # occupancy below it is safe for *any* admitted mix, so no
            # homogeneity guard applies here.
            admitted = link.occupancy < decision.admissible
            if admitted and self.policy == EFFECTIVE_BANDWIDTH_METHOD:
                # Keep effective-bandwidth bookkeeping conservative:
                # charge the peak allocation, symmetric on release.
                bandwidth = float(model.mean) + float(model.std) * PEAK_SIGMA
        elif self.policy == EFFECTIVE_BANDWIDTH_METHOD:
            admitted = (
                link.admitted_bandwidth + bandwidth <= link.capacity
            )
        else:
            if link.class_counts and fingerprint not in link.class_counts:
                raise ParameterError(
                    f"link {link_id!r} carries class "
                    f"{next(iter(link.class_counts))} but policy "
                    f"{self.policy!r} is homogeneous-only; use the "
                    f"{EFFECTIVE_BANDWIDTH_METHOD!r} policy for mixes"
                )
            admitted = (
                link.class_counts.get(fingerprint, 0) < decision.admissible
            )
        if admitted:
            link.connections[connection_id] = _Connection(
                fingerprint=fingerprint,
                mean=float(model.mean),
                effective_bandwidth=bandwidth,
            )
            link.class_counts[fingerprint] = (
                link.class_counts.get(fingerprint, 0) + 1
            )
            if bandwidth is not None:
                link.admitted_bandwidth += bandwidth
            link.admitted_mean_load += float(model.mean)
        if enabled:
            _metrics.add(
                "service.admitted" if admitted else "service.blocked"
            )
            latency_ns = time.perf_counter_ns() - started
            # Tail-latency sketches: one aggregate, one per link (the
            # obs sweep reads both to render latency-vs-rho tables).
            _metrics.observe_sketch("service.admit_latency_ns", latency_ns)
            _metrics.observe_sketch(
                f"service.admit_latency_ns.{link_id}", latency_ns
            )
            # Occupancy after the decision is deterministic for a
            # given seed, so this sketch is part of the serial-vs-jobs
            # bit-identity contract (latency sketches are not).
            _metrics.observe_sketch(
                f"service.occupancy.{link_id}", link.occupancy
            )
        return AdmissionDecision(
            admitted=admitted,
            link_id=link_id,
            connection_id=connection_id,
            policy=self.policy,
            reason=REASON_ADMITTED if admitted else REASON_CAPACITY,
            admissible=decision.admissible,
            occupancy=link.occupancy,
            effective_bandwidth=bandwidth,
            fallback=fallback,
        )

    def release(self, link_id: str, connection_id: str) -> None:
        """Tear down an admitted connection, freeing its allocation."""
        link = self.link(link_id)
        try:
            connection = link.connections.pop(connection_id)
        except KeyError:
            raise ParameterError(
                f"connection {connection_id!r} is not admitted on "
                f"link {link_id!r}"
            ) from None
        remaining = link.class_counts[connection.fingerprint] - 1
        if remaining:
            link.class_counts[connection.fingerprint] = remaining
        else:
            del link.class_counts[connection.fingerprint]
        if connection.effective_bandwidth is not None:
            link.admitted_bandwidth -= connection.effective_bandwidth
        link.admitted_mean_load -= connection.mean
        if _spans._ENABLED:
            _metrics.add("service.released")

    # -- exact state transport (journal snapshots) ---------------------------

    def export_link_state(self, link_id: str) -> dict:
        """The link's admitted mix as exact, JSON-serializable data.

        Floats travel as ``float.hex()`` and the running accumulators
        are exported *as stored* — never recomputed by summation on
        restore, because float addition order matters and recovery
        must be byte-identical to a run that never crashed.
        """
        link = self.link(link_id)
        return {
            "connections": [
                [
                    connection_id,
                    connection.fingerprint,
                    connection.mean.hex(),
                    (
                        None
                        if connection.effective_bandwidth is None
                        else connection.effective_bandwidth.hex()
                    ),
                ]
                for connection_id, connection in link.connections.items()
            ],
            "admitted_bandwidth": link.admitted_bandwidth.hex(),
            "admitted_mean_load": link.admitted_mean_load.hex(),
        }

    def restore_link_state(self, link_id: str, state: dict) -> None:
        """Restore :meth:`export_link_state` output exactly.

        Also invalidates the decision-key/fingerprint caches: the
        restored world may pair recycled ``id()`` values with
        different models, and a recovered shard must never serve a
        decision against a stale fingerprint.
        """
        self.invalidate_decision_caches()
        link = self.link(link_id)
        link.connections.clear()
        link.class_counts.clear()
        for connection_id, fingerprint, mean_hex, bandwidth_hex in state[
            "connections"
        ]:
            link.connections[connection_id] = _Connection(
                fingerprint=fingerprint,
                mean=float.fromhex(mean_hex),
                effective_bandwidth=(
                    None
                    if bandwidth_hex is None
                    else float.fromhex(bandwidth_hex)
                ),
            )
            link.class_counts[fingerprint] = (
                link.class_counts.get(fingerprint, 0) + 1
            )
        link.admitted_bandwidth = float.fromhex(state["admitted_bandwidth"])
        link.admitted_mean_load = float.fromhex(state["admitted_mean_load"])

    # -- introspection -------------------------------------------------------

    def occupancy(self, link_id: str) -> int:
        return self.link(link_id).occupancy

    def utilization(self, link_id: str) -> float:
        """Carried mean load as a fraction of the link capacity."""
        link = self.link(link_id)
        return link.admitted_mean_load / link.capacity

    def __repr__(self) -> str:
        return (
            f"AdmissionEngine(policy={self.policy!r}, "
            f"links={len(self._links)}, tables={self.tables!r})"
        )
