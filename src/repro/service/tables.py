"""Memoized admissible-connection decision tables for online CAC.

The offline machinery (:func:`repro.atm.cac.admissible_connections`,
:func:`repro.core.effective_bandwidth.effective_bandwidth_at_cts`)
answers "how many connections fit?" with a handful of Bahadur-Rao
inversions — milliseconds each.  An online admission service answers
the same question per *request*, at workload scale: a million-request
replay must not cost a million inversions.

The resolution is the classical CAC decision table: the admissible
count depends only on ``(model, link capacity, QoS contract, policy)``,
none of which change while a connection request is in flight.  A
:class:`DecisionTableCache` computes each distinct decision exactly
once and serves every subsequent lookup O(1) from an LRU map, so the
steady-state cost of :meth:`DecisionTableCache.lookup` is a dict probe.
With ``path=`` the computed entries additionally persist as JSONL, so
a restarted service (or a fleet of replay workers) skips even the first
inversion.

Cache keys are *fingerprints*: the model contributes its class name,
first- and second-order statistics, and the ACF sampled on a fixed lag
grid (hashed); QoS and capacity floats enter via ``float.hex`` so the
key is exact, not formatted.  Two model instances with identical
statistics — e.g. ``make_z(0.975)`` built twice, or the same model
unpickled in a worker process — therefore share one table entry.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.atm.cac import admissible_connections
from repro.atm.qos import QoSRequirement
from repro.core.effective_bandwidth import effective_bandwidth_at_cts
from repro.exceptions import JournalError, ParameterError
from repro.models.base import TrafficModel
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.service.journal import atomic_write_text, decode_line, encode_line
from repro.utils.validation import check_integer

__all__ = [
    "CAC_METHODS",
    "Decision",
    "DecisionTableCache",
    "EFFECTIVE_BANDWIDTH_METHOD",
    "SERVICE_METHODS",
    "decision_key",
    "model_fingerprint",
]

#: The offline policies of :mod:`repro.atm.cac`, servable per request.
CAC_METHODS: Tuple[str, ...] = (
    "peak-rate",
    "mean-rate",
    "bahadur-rao",
    "large-n",
)

#: Additive policy for heterogeneous mixes: each class is charged its
#: CTS effective bandwidth and admission checks ``sum e_i <= C``.
EFFECTIVE_BANDWIDTH_METHOD = "effective-bandwidth"

#: Every policy the admission engine can serve.
SERVICE_METHODS: Tuple[str, ...] = CAC_METHODS + (EFFECTIVE_BANDWIDTH_METHOD,)

#: Lags at which the ACF is sampled into the model fingerprint.  A
#: Fibonacci-spaced grid distinguishes both short-term (DAR weights)
#: and long-term (Hurst) correlation structure without evaluating a
#: dense ACF; 987 lags cover every CTS the paper's operating points
#: produce.
_FINGERPRINT_LAGS = (1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987)

_FINGERPRINT_ATTR = "_repro_service_fingerprint"


def model_fingerprint(model: TrafficModel) -> str:
    """A stable identity for ``model``'s admission-relevant statistics.

    Equal-statistics instances (rebuilt factories, unpickled copies in
    worker processes) produce equal fingerprints; the result is
    memoized on the instance because the ACF evaluation is the only
    non-trivial cost and admission lookups are per-request.
    """
    cached = getattr(model, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    acf = np.asarray(
        model.autocorrelation(np.asarray(_FINGERPRINT_LAGS)), dtype=float
    )
    payload = json.dumps(
        {
            "class": type(model).__name__,
            "mean": float(model.mean).hex(),
            "variance": float(model.variance).hex(),
            "hurst": float(model.hurst).hex(),
            "frame_duration": float(model.frame_duration).hex(),
            # Rounded so fingerprints survive harmless float jitter in
            # ACF evaluation paths while still separating real models.
            "acf": [round(float(r), 12) for r in acf],
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    fingerprint = f"{type(model).__name__}:{digest}"
    try:
        setattr(model, _FINGERPRINT_ATTR, fingerprint)
    except AttributeError:
        pass  # frozen/slotted models simply recompute
    return fingerprint


def decision_key(
    model: TrafficModel,
    link_capacity: float,
    qos: QoSRequirement,
    method: str,
) -> str:
    """The exact cache key of one admission decision."""
    return "|".join(
        (
            method,
            model_fingerprint(model),
            float(link_capacity).hex(),
            float(qos.max_delay_seconds).hex(),
            float(qos.max_clr).hex(),
        )
    )


@dataclass(frozen=True)
class Decision:
    """One cached admission decision.

    ``admissible`` is the maximum connection count for the keyed
    (model, capacity, QoS, method); under the effective-bandwidth
    policy it is the homogeneous count ``floor(C / e)`` and
    ``effective_bandwidth`` carries the per-connection charge ``e``
    that heterogeneous admission sums.
    """

    key: str
    method: str
    admissible: int
    link_capacity: float
    effective_bandwidth: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "method": self.method,
            "admissible": self.admissible,
            "link_capacity": self.link_capacity,
            "effective_bandwidth": self.effective_bandwidth,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Decision":
        return cls(
            key=str(data["key"]),
            method=str(data["method"]),
            admissible=int(data["admissible"]),
            link_capacity=float(data["link_capacity"]),
            effective_bandwidth=(
                None
                if data.get("effective_bandwidth") is None
                else float(data["effective_bandwidth"])
            ),
        )


def _compute_decision(
    key: str,
    model: TrafficModel,
    link_capacity: float,
    qos: QoSRequirement,
    method: str,
) -> Decision:
    """The expensive path: one offline inversion per distinct key."""
    with _spans.span("service.table_compute", method=method):
        if method == EFFECTIVE_BANDWIDTH_METHOD:
            buffer_cells = qos.buffer_cells(
                link_capacity, model.frame_duration
            )
            if buffer_cells <= 0:
                raise ParameterError(
                    "effective-bandwidth policy needs a positive buffer; "
                    f"QoS delay {qos.max_delay_seconds} at capacity "
                    f"{link_capacity} yields {buffer_cells} cells"
                )
            # Classical space-parameter choice: overflow <= e^{-theta B}
            # at the target CLR.
            theta = -math.log(qos.max_clr) / buffer_cells
            bandwidth = effective_bandwidth_at_cts(
                model, theta, link_capacity, buffer_cells
            )
            return Decision(
                key=key,
                method=method,
                admissible=int(link_capacity // bandwidth),
                link_capacity=float(link_capacity),
                effective_bandwidth=float(bandwidth),
            )
        count = admissible_connections(model, link_capacity, qos, method)
        return Decision(
            key=key,
            method=method,
            admissible=int(count),
            link_capacity=float(link_capacity),
        )


class DecisionTableCache:
    """LRU-memoized admission decisions with optional JSONL persistence.

    Parameters
    ----------
    max_entries:
        LRU capacity.  Decision tables are tiny (one entry per distinct
        (model, capacity, QoS, policy)); the bound exists so a
        pathological caller cycling through unbounded QoS grids cannot
        grow the service without limit.
    path:
        Optional JSONL file.  Existing entries are loaded on
        construction; newly computed entries are written back when
        ``persist`` is true, so the table warms across runs.  Writes
        are crash-safe (write-temp + fsync + rename) and every line
        carries a CRC32, so a mid-write crash can never leave a file
        that fails to load: damaged or torn lines are *dropped* —
        counted on :attr:`recovered_lines` and the
        ``service.table_lines_dropped`` counter — and the dropped
        decisions are simply recomputed on their next lookup.  Plain
        (pre-CRC) lines from older files still load.
    persist:
        Whether computed entries are written back to ``path``.  Replay
        workers load shared tables read-only (``persist=False``) so a
        fleet never races on writes.
    """

    def __init__(
        self,
        max_entries: int = 1024,
        *,
        path=None,
        persist: bool = True,
    ):
        self.max_entries = check_integer(
            max_entries, "max_entries", minimum=1
        )
        self.path = None if path is None else Path(path)
        self.persist = bool(persist)
        self._entries: "OrderedDict[str, Decision]" = OrderedDict()
        #: Every decision destined for the file: loaded + computed.
        #: Not subject to LRU eviction (the file is the durable store;
        #: the LRU bound protects memory on the hot path only).
        self._persisted: "OrderedDict[str, Decision]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.loaded = 0
        #: Damaged lines dropped (not fatal) during the last load.
        self.recovered_lines = 0
        if self.path is not None and self.path.exists():
            self._load()

    # -- persistence ---------------------------------------------------------

    @staticmethod
    def _parse_line(line: str) -> Decision:
        """One persisted decision: CRC-wrapped, or a legacy plain dict."""
        try:
            return Decision.from_dict(decode_line(line))
        except JournalError:
            return Decision.from_dict(json.loads(line))

    def _load(self) -> None:
        self.load_text(self.path.read_text(encoding="utf-8"))

    def load_text(self, text: str) -> None:
        """Load persisted entries from ``text`` (a JSONL table image).

        Exactly the parsing a ``path=`` construction performs — last
        write wins, damaged lines dropped and counted — so a replay
        worker handed a shared-memory image of the table file ends up
        in the same state as one that read the file itself.
        """
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                decision = self._parse_line(line)
            except (KeyError, TypeError, ValueError):
                # A torn or bit-flipped line must not take the service
                # down: drop it loudly and recompute on next lookup.
                self.recovered_lines += 1
                if _spans._ENABLED:
                    _metrics.add("service.table_lines_dropped")
                continue
            # Last write wins, matching historical append persistence.
            self._entries[decision.key] = decision
            self._entries.move_to_end(decision.key)
            self._persisted[decision.key] = decision
            self.loaded += 1
        self._evict()

    def _persist(self, decision: Decision) -> None:
        """Durably add ``decision`` via whole-file atomic replace.

        Rewriting the file sounds expensive but isn't: tables hold one
        entry per distinct (model, capacity, QoS, policy) — a handful —
        and only cache *misses* reach here.  In exchange a crash at any
        instant leaves a complete, loadable file.
        """
        with self._lock:
            self._persisted[decision.key] = decision
            text = "".join(
                encode_line(entry.to_dict()) + "\n"
                for entry in self._persisted.values()
            )
        atomic_write_text(self.path, text)

    # -- the hot path --------------------------------------------------------

    def lookup(
        self,
        model: TrafficModel,
        link_capacity: float,
        qos: QoSRequirement,
        method: str,
        *,
        key: Optional[str] = None,
    ) -> Decision:
        """The admission decision for this operating point, cached.

        The first lookup of a distinct (model, capacity, QoS, method)
        pays the offline inversion; every later one is a dict probe.
        Callers that serve many requests against a fixed operating
        point (the admission engine) pass the precomputed ``key`` to
        skip re-serializing the fingerprint and QoS floats per
        request; hit/miss accounting is identical either way.
        """
        if method not in SERVICE_METHODS:
            raise ParameterError(
                f"unknown admission policy {method!r}; choose from "
                f"{', '.join(SERVICE_METHODS)}"
            )
        if key is None:
            key = decision_key(model, link_capacity, qos, method)
        with self._lock:
            decision = self._entries.get(key)
            if decision is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                if _spans._ENABLED:
                    _metrics.add("service.table_hits")
                return decision
        decision = _compute_decision(key, model, link_capacity, qos, method)
        with self._lock:
            self.misses += 1
            self._entries[key] = decision
            self._entries.move_to_end(key)
            self._evict()
        if _spans._ENABLED:
            _metrics.add("service.table_misses")
        if self.persist and self.path is not None:
            self._persist(decision)
        return decision

    def peek(
        self,
        model: TrafficModel,
        link_capacity: float,
        qos: QoSRequirement,
        method: str,
        *,
        key: Optional[str] = None,
    ) -> Optional[Decision]:
        """A cached decision without touching hit/miss accounting.

        Journal recovery re-reads boundaries that the crashed attempt
        already looked up; counting those reads again would break the
        byte-identity of the recovered hit/miss totals.
        """
        if key is None:
            key = decision_key(model, link_capacity, qos, method)
        with self._lock:
            return self._entries.get(key)

    def dump_text(self) -> str:
        """The live entries as a JSONL table image (CRC-wrapped lines).

        Exactly the format :meth:`load_text` parses and ``path=``
        persistence writes, so a cache warmed in one process can be
        published once (e.g. through :mod:`repro.parallel.shm`) and
        reloaded by any number of read-only consumers into the same
        entry state — the immutable-snapshot transport the sharded
        admission frontend uses.
        """
        with self._lock:
            return "".join(
                encode_line(entry.to_dict()) + "\n"
                for entry in self._entries.values()
            )

    def _evict(self) -> None:
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Hit/miss/size accounting for reports and replay summaries."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
            "loaded": self.loaded,
        }

    # -- exact state transport (journal snapshots) ---------------------------

    def snapshot_state(self) -> dict:
        """Counters and entries, exactly, for a journal snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "decisions": [d.to_dict() for d in self._entries.values()],
            }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`snapshot_state` output (LRU order included).

        Restores in-memory state only — persistence is untouched, so a
        read-only worker recovering from a journal never writes.
        """
        with self._lock:
            self.hits = int(state["hits"])
            self.misses = int(state["misses"])
            self._entries = OrderedDict(
                (d["key"], Decision.from_dict(d))
                for d in state["decisions"]
            )

    def __repr__(self) -> str:
        return (
            f"DecisionTableCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
