"""Shard supervision: restart crashed or hung link-shard workers.

The replay driver (:mod:`repro.service.replay`) historically failed
fast — one crashed link shard killed the whole run.  The supervisor
wraps the same backend session protocol with a restart loop:

* **crashes** — a shard whose payload raises (any exception: a
  supervisor restarts indiscriminately, unlike the resilience
  engine's retryable/fatal triage, because a restarted shard recovers
  its exact state from the journal and re-verifies every journaled
  decision) is resubmitted with an incremented attempt number, up to
  ``max_restarts`` extra attempts per shard;
* **hangs** — on process-pool backends the supervisor polls with a
  ``heartbeat_seconds`` wait instead of blocking forever; a shard
  running past ``shard_timeout_seconds`` is declared hung, its
  eventual (stale) result is discarded on arrival, and a fresh
  attempt is submitted.  The attempt number is an *epoch fence*: the
  stale worker keeps appending only to its own per-attempt journal
  file, which the fresh attempt reads read-only — the two never write
  the same file.

Restart attempts re-enter the payload factory, so each attempt starts
from pristine inputs (the replay driver hands every attempt an
unadvanced copy of the link's RNG stream) and reads its attempt
number from the ambient replication context — the same mechanism
:mod:`repro.resilience.faults` uses to address injected faults at
``(shard, attempt)`` granularity.

Determinism: restarts change *when* results arrive, never *what* they
contain.  Results are returned in shard-index order and, because a
recovered attempt replays the journal byte-exactly, a supervised run
with crashes produces the same summary bytes as a fault-free run.
Hung-shard recovery is the one place wall-clock time enters; the
stale result is discarded without merging its telemetry, so even hang
chaos leaves the summary bytes unchanged (observability counters
record that recovery happened).

Caveat: a hung worker occupies its pool slot until it returns —
``ProcessPoolExecutor`` cannot preempt a running task — so injected
hangs must be finite sleeps, and ``shard_timeout_seconds`` should be
comfortably below them only in tests.  On the inline (serial) path
there is no concurrency to poll; hangs are not preemptible and only
crash recovery applies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.exceptions import ParameterError, SimulationError
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.obs.spans import span
from repro.parallel.backends import Backend
from repro.parallel.worker import (
    WorkerPayload,
    WorkerResult,
    execute_payload,
)
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "ShardReport",
    "ShardSupervisor",
    "SupervisionPolicy",
]

#: Builds the payload for one (shard, attempt); called afresh on every
#: restart so each attempt starts from pristine inputs.
PayloadFactory = Callable[[int, int], WorkerPayload]


@dataclass(frozen=True)
class SupervisionPolicy:
    """How hard to fight for each shard before giving up.

    Parameters
    ----------
    max_restarts:
        Extra attempts per shard beyond the first (0 = fail fast,
        exactly the unsupervised behavior plus bookkeeping).
    shard_timeout_seconds:
        Wall-clock budget per attempt before a shard is declared hung
        (process-pool backends only; None disables hang detection).
    heartbeat_seconds:
        Poll interval while waiting on pool results; bounds how stale
        the supervisor's view of a hung shard can get.
    backoff_seconds / backoff_factor:
        Sleep ``backoff_seconds * backoff_factor**attempt`` before
        resubmitting a failed shard.  The default 0.0 restarts
        immediately — right for deterministic journal recovery, where
        the failure is not transient congestion.
    """

    max_restarts: int = 2
    shard_timeout_seconds: Optional[float] = None
    heartbeat_seconds: float = 0.5
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    #: Injectable clocks for tests; not part of the policy's identity.
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self):
        check_integer(self.max_restarts, "max_restarts", minimum=0)
        if self.shard_timeout_seconds is not None:
            check_positive(self.shard_timeout_seconds, "shard_timeout_seconds")
        check_positive(self.heartbeat_seconds, "heartbeat_seconds")
        if self.backoff_seconds < 0:
            raise ParameterError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise ParameterError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_for(self, attempt: int) -> float:
        """Sleep before resubmitting ``attempt`` (0-based failed one)."""
        return self.backoff_seconds * self.backoff_factor**attempt


@dataclass
class ShardReport:
    """What supervision did for one shard (diagnostics, not results)."""

    link_index: int
    attempts: int = 1
    restarts: int = 0
    hangs: int = 0
    outcome: str = "ok"


class ShardSupervisor:
    """Run ``n_shards`` payloads to completion, restarting failures.

    Parameters
    ----------
    payload_factory:
        ``(index, attempt) -> WorkerPayload``; invoked once per
        attempt, including restarts.
    n_shards:
        Shard count; results are returned in index order.
    backend:
        A :class:`~repro.parallel.backends.Backend` or None for
        inline execution (the serial path: sequential per-shard retry
        loops, no hang detection).
    policy:
        The :class:`SupervisionPolicy` restart/timeout budget.
    """

    def __init__(
        self,
        payload_factory: PayloadFactory,
        n_shards: int,
        *,
        backend: Optional[Backend] = None,
        policy: Optional[SupervisionPolicy] = None,
    ):
        self.payload_factory = payload_factory
        self.n_shards = check_integer(n_shards, "n_shards", minimum=1)
        self.backend = backend
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.reports: List[ShardReport] = []

    def run(self) -> List[WorkerResult]:
        """All shards' successful results, in shard-index order.

        Raises the final attempt's error once a shard exhausts its
        restart budget (fail-fast semantics preserved — partial
        results are never returned).
        """
        self.reports = [ShardReport(i) for i in range(self.n_shards)]
        with span(
            "service.supervisor",
            shards=self.n_shards,
            backend="inline" if self.backend is None else self.backend.name,
            max_restarts=self.policy.max_restarts,
        ):
            if self.backend is None:
                return self._run_inline()
            return self._run_pool()

    # -- shared failure bookkeeping ------------------------------------------

    def _register_failure(
        self, index: int, attempt: int, error: BaseException, *, hang: bool
    ) -> int:
        """Count a failed attempt; next attempt number, or raise."""
        report = self.reports[index]
        if hang:
            report.hangs += 1
            if _spans._ENABLED:
                _metrics.add("service.shard_hangs")
        if attempt >= self.policy.max_restarts:
            report.outcome = "exhausted"
            raise error
        report.restarts += 1
        report.attempts += 1
        if _spans._ENABLED:
            _metrics.add("service.shard_restarts")
        backoff = self.policy.backoff_for(attempt)
        if backoff > 0:
            self.policy.sleep(backoff)
        return attempt + 1

    # -- inline path ---------------------------------------------------------

    def _run_inline(self) -> List[WorkerResult]:
        results: List[WorkerResult] = []
        for index in range(self.n_shards):
            attempt = 0
            while True:
                result = execute_payload(
                    self.payload_factory(index, attempt)
                )
                if not result.failed:
                    results.append(result)
                    break
                attempt = self._register_failure(
                    index, attempt, result.error, hang=False
                )
        return results

    # -- pool path -----------------------------------------------------------

    def _run_pool(self) -> List[WorkerResult]:
        policy = self.policy
        results: List[Optional[WorkerResult]] = [None] * self.n_shards
        outstanding = self.n_shards
        active: dict = {}  # (index, attempt) -> submit clock
        stale: set = set()  # fenced-off (index, attempt) epochs
        try:
            return self._drain_pool(results, outstanding, active, stale)
        finally:
            if stale:
                # A fenced-off hung worker never returned.  A spawn
                # pool dies with its session, but a persistent (warm)
                # pool would keep the hung process occupying one of
                # its slots across every future session — replace its
                # workers instead.
                recycle = getattr(self.backend, "recycle", None)
                if recycle is not None:
                    recycle()
                    if _spans._ENABLED:
                        _metrics.add("service.pool_recycled")

    def _drain_pool(
        self,
        results: List[Optional[WorkerResult]],
        outstanding: int,
        active: dict,
        stale: set,
    ) -> List[WorkerResult]:
        policy = self.policy
        with self.backend.session() as session:

            def submit(index: int, attempt: int) -> None:
                session.submit(self.payload_factory(index, attempt))
                active[(index, attempt)] = policy.clock()

            def resubmit_or_raise(
                index: int, attempt: int, error: BaseException, *, hang: bool
            ) -> None:
                submit(
                    index,
                    self._register_failure(index, attempt, error, hang=hang),
                )

            for index in range(self.n_shards):
                submit(index, 0)

            while outstanding:
                wait = policy.heartbeat_seconds
                if policy.shard_timeout_seconds is not None and active:
                    now = policy.clock()
                    remaining = min(
                        policy.shard_timeout_seconds - (now - started)
                        for started in active.values()
                    )
                    wait = max(0.001, min(wait, remaining))
                result = (
                    session.next_completed(timeout=wait)
                    if session.pending
                    else None
                )
                if result is not None:
                    key = (result.index, result.attempt)
                    if key in stale:
                        # A hung shard finally returned after its
                        # replacement was dispatched: drop the result
                        # (and its telemetry) on the floor.
                        stale.discard(key)
                        if _spans._ENABLED:
                            _metrics.add("service.shard_stale_results")
                        continue
                    active.pop(key, None)
                    if result.failed:
                        resubmit_or_raise(
                            result.index,
                            result.attempt,
                            result.error,
                            hang=False,
                        )
                        continue
                    results[result.index] = result
                    self.reports[result.index].outcome = "ok"
                    outstanding -= 1
                    continue
                # Nothing completed within the wait: scan for hangs.
                if policy.shard_timeout_seconds is None:
                    continue
                now = policy.clock()
                for key in sorted(active):
                    if now - active[key] < policy.shard_timeout_seconds:
                        continue
                    index, attempt = key
                    del active[key]
                    stale.add(key)
                    resubmit_or_raise(
                        index,
                        attempt,
                        SimulationError(
                            f"shard {index} attempt {attempt} exceeded "
                            f"{policy.shard_timeout_seconds}s wall-clock "
                            "budget (declared hung)"
                        ),
                        hang=True,
                    )
        return results  # type: ignore[return-value]
