"""Reporting for replay runs: tables, dicts, and canonical JSON.

The canonical JSON form exists for exactness, not prettiness: CI's
workload smoke job replays the same seed serially and with
``--jobs 2`` and byte-compares the two files, so the serialization
must be deterministic (sorted keys, repr-roundtrip floats — Python's
``json`` emits the shortest repr, which round-trips exactly).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.service.replay import LinkStats, ReplaySummary

__all__ = [
    "format_summary",
    "link_stats_to_dict",
    "summary_to_dict",
    "summary_to_json",
    "write_summary",
]


def link_stats_to_dict(stats: LinkStats, capacity: float) -> dict:
    return {
        "link_index": stats.link_index,
        "n_requests": stats.n_requests,
        "admitted": stats.admitted,
        "blocked": stats.blocked,
        "shed": stats.shed,
        "fallbacks": stats.fallbacks,
        "blocking_probability": stats.blocking_probability,
        "peak_occupancy": stats.peak_occupancy,
        "admissible": stats.admissible,
        "boundary_violations": stats.boundary_violations,
        "utilization": stats.utilization(capacity),
        "elapsed_seconds": stats.elapsed_seconds,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
    }


def summary_to_dict(summary: ReplaySummary) -> dict:
    """The full replay outcome as plain JSON-serializable data."""
    return {
        "policy": summary.policy,
        "capacity_cells_per_frame": summary.capacity,
        "n_links": summary.n_links,
        "n_requests": summary.n_requests,
        "admitted": summary.admitted,
        "blocked": summary.blocked,
        "shed": summary.shed,
        "shed_ratio": summary.shed_ratio,
        "fallbacks": summary.fallbacks,
        "blocking_probability": summary.blocking_probability,
        "utilization": summary.utilization,
        "cache_hits": summary.cache_hits,
        "cache_misses": summary.cache_misses,
        "cache_hit_rate": summary.cache_hit_rate,
        "boundary_violations": summary.boundary_violations,
        "offered_erlangs": summary.offered_erlangs,
        "links": [
            link_stats_to_dict(stats, summary.capacity)
            for stats in summary.links
        ],
    }


def summary_to_json(summary: ReplaySummary) -> str:
    """Canonical single-line JSON (byte-stable across backends)."""
    return json.dumps(summary_to_dict(summary), sort_keys=True)


def write_summary(path, summary: ReplaySummary) -> Path:
    """Write the canonical JSON line to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(summary_to_json(summary) + "\n", encoding="utf-8")
    return path


def format_summary(summary: ReplaySummary) -> str:
    """Human-readable replay report (one row per link plus totals)."""
    lines = [
        f"workload replay — policy {summary.policy}, "
        f"{summary.n_links} link(s) x {summary.links[0].n_requests} "
        f"requests, offered {summary.offered_erlangs:.1f} Erl "
        f"(admissible N = {summary.links[0].admissible})",
        f"{'link':>4} {'admitted':>9} {'blocked':>8} {'P(block)':>9} "
        f"{'peak':>5} {'util':>6} {'cache hit%':>10}",
    ]
    for stats in summary.links:
        cache_total = stats.cache_hits + stats.cache_misses
        hit_rate = stats.cache_hits / cache_total if cache_total else 0.0
        lines.append(
            f"{stats.link_index:>4} {stats.admitted:>9} "
            f"{stats.blocked:>8} {stats.blocking_probability:>9.4f} "
            f"{stats.peak_occupancy:>5} "
            f"{stats.utilization(summary.capacity):>6.3f} "
            f"{hit_rate:>10.2%}"
        )
    lines.append(
        f"total: {summary.admitted} admitted, {summary.blocked} blocked "
        f"(P = {summary.blocking_probability:.4f}), utilization "
        f"{summary.utilization:.3f}, decision-table hit rate "
        f"{summary.cache_hit_rate:.2%}, boundary violations "
        f"{summary.boundary_violations}"
    )
    if summary.shed or summary.fallbacks:
        lines.append(
            f"overload: {summary.shed} shed "
            f"(ratio {summary.shed_ratio:.4f}), "
            f"{summary.fallbacks} fallback decision(s)"
        )
    return "\n".join(lines)
