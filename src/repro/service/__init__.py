"""repro.service — the online connection-admission-control service.

The paper's motivating application, made operational: where
:mod:`repro.atm.cac` computes one-shot offline capacity numbers, this
package *serves* admit/release decisions at workload scale and measures
that the served boundary matches the offline one.

* :mod:`repro.service.tables`   — memoized admissible-N decision
  tables: one offline inversion per distinct (model, capacity, QoS,
  policy), then O(1) LRU lookups, with optional JSONL persistence;
* :mod:`repro.service.engine`   — :class:`AdmissionEngine`: per-link
  admitted-mix state with ``admit()``/``release()`` for homogeneous
  (count) and heterogeneous (effective-bandwidth) policies;
* :mod:`repro.service.workload` — reproducible Poisson connection
  workloads with exponential or heavy-tailed holding times;
* :mod:`repro.service.replay`   — the replay driver: streams millions
  of requests through per-link engines, shards links across the
  :mod:`repro.parallel` backends (bit-identical to serial), and
  reports blocking, utilization, and cache effectiveness;
* :mod:`repro.service.stats`    — report formatting and canonical
  JSON serialization;
* :mod:`repro.service.journal`  — append-only checksummed decision
  journals with periodic state snapshots; a restarted shard recovers
  its exact link state from them;
* :mod:`repro.service.supervision` — restart crashed/hung link shards
  with per-shard deadlines, heartbeats, and bounded retry;
* :mod:`repro.service.overload` — bounded admission queue, circuit
  breaker, and conservative peak-rate fallback under overload;
* :mod:`repro.service.frontend` — the sharded admission frontend:
  consistent-hash link placement, a shared-memory decision-table
  snapshot, an in-process API, and an asyncio line-JSON server;
* :mod:`repro.service.drive`    — the open-loop rho-driven load
  generator: derive lambda from rho and the admissible boundary,
  sweep rho toward 1, report p50/p99/p999 admit latency per point;
* :mod:`repro.service.cli`      — the ``workload`` command-line verb
  (also reachable as ``python -m repro.experiments.runner workload``);
* :mod:`repro.service.frontend_cli` — the ``serve`` and ``drive``
  runner verbs built on the two modules above.

See ``docs/SERVICE.md`` for the architecture and determinism
contract, and ``docs/ROBUSTNESS.md`` for the service fault model and
recovery runbook.
"""

from repro.service.drive import (
    DrivePoint,
    DriveReport,
    ShardDriveStats,
    derive_arrival_rate,
    drive,
)
from repro.service.engine import AdmissionDecision, AdmissionEngine, LinkState
from repro.service.frontend import (
    AdmissionFrontend,
    ConsistentHashRing,
    FrontendServer,
    FrontendStats,
    build_table_snapshot,
)
from repro.service.journal import (
    JournalRecovery,
    LinkJournal,
    find_recovery,
    journal_path,
    load_journal,
)
from repro.service.overload import (
    AdmissionQueue,
    CircuitBreaker,
    OverloadPolicy,
    OverloadState,
)
from repro.service.replay import (
    LinkStats,
    ReplaySummary,
    replay_link,
    replay_workload,
)
from repro.service.stats import (
    format_summary,
    summary_to_dict,
    summary_to_json,
    write_summary,
)
from repro.service.supervision import (
    ShardReport,
    ShardSupervisor,
    SupervisionPolicy,
)
from repro.service.tables import (
    CAC_METHODS,
    Decision,
    DecisionTableCache,
    EFFECTIVE_BANDWIDTH_METHOD,
    SERVICE_METHODS,
    decision_key,
    model_fingerprint,
)
from repro.service.workload import (
    ConnectionClass,
    HOLDING_LAWS,
    Workload,
    WorkloadSpec,
    generate_workload,
    holding_time_distribution,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionEngine",
    "AdmissionFrontend",
    "AdmissionQueue",
    "CAC_METHODS",
    "CircuitBreaker",
    "ConnectionClass",
    "ConsistentHashRing",
    "Decision",
    "DecisionTableCache",
    "DrivePoint",
    "DriveReport",
    "EFFECTIVE_BANDWIDTH_METHOD",
    "FrontendServer",
    "FrontendStats",
    "HOLDING_LAWS",
    "JournalRecovery",
    "LinkJournal",
    "LinkState",
    "LinkStats",
    "OverloadPolicy",
    "OverloadState",
    "ReplaySummary",
    "SERVICE_METHODS",
    "ShardDriveStats",
    "ShardReport",
    "ShardSupervisor",
    "SupervisionPolicy",
    "Workload",
    "WorkloadSpec",
    "build_table_snapshot",
    "decision_key",
    "derive_arrival_rate",
    "drive",
    "find_recovery",
    "format_summary",
    "generate_workload",
    "holding_time_distribution",
    "journal_path",
    "load_journal",
    "model_fingerprint",
    "replay_link",
    "replay_workload",
    "summary_to_dict",
    "summary_to_json",
    "write_summary",
]
