"""repro.service — the online connection-admission-control service.

The paper's motivating application, made operational: where
:mod:`repro.atm.cac` computes one-shot offline capacity numbers, this
package *serves* admit/release decisions at workload scale and measures
that the served boundary matches the offline one.

* :mod:`repro.service.tables`   — memoized admissible-N decision
  tables: one offline inversion per distinct (model, capacity, QoS,
  policy), then O(1) LRU lookups, with optional JSONL persistence;
* :mod:`repro.service.engine`   — :class:`AdmissionEngine`: per-link
  admitted-mix state with ``admit()``/``release()`` for homogeneous
  (count) and heterogeneous (effective-bandwidth) policies;
* :mod:`repro.service.workload` — reproducible Poisson connection
  workloads with exponential or heavy-tailed holding times;
* :mod:`repro.service.replay`   — the replay driver: streams millions
  of requests through per-link engines, shards links across the
  :mod:`repro.parallel` backends (bit-identical to serial), and
  reports blocking, utilization, and cache effectiveness;
* :mod:`repro.service.stats`    — report formatting and canonical
  JSON serialization;
* :mod:`repro.service.cli`      — the ``workload`` command-line verb
  (also reachable as ``python -m repro.experiments.runner workload``).

See ``docs/SERVICE.md`` for the architecture and determinism contract.
"""

from repro.service.engine import AdmissionDecision, AdmissionEngine, LinkState
from repro.service.replay import (
    LinkStats,
    ReplaySummary,
    replay_link,
    replay_workload,
)
from repro.service.stats import (
    format_summary,
    summary_to_dict,
    summary_to_json,
    write_summary,
)
from repro.service.tables import (
    CAC_METHODS,
    Decision,
    DecisionTableCache,
    EFFECTIVE_BANDWIDTH_METHOD,
    SERVICE_METHODS,
    decision_key,
    model_fingerprint,
)
from repro.service.workload import (
    ConnectionClass,
    HOLDING_LAWS,
    Workload,
    WorkloadSpec,
    generate_workload,
    holding_time_distribution,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionEngine",
    "CAC_METHODS",
    "ConnectionClass",
    "Decision",
    "DecisionTableCache",
    "EFFECTIVE_BANDWIDTH_METHOD",
    "HOLDING_LAWS",
    "LinkState",
    "LinkStats",
    "ReplaySummary",
    "SERVICE_METHODS",
    "Workload",
    "WorkloadSpec",
    "decision_key",
    "format_summary",
    "generate_workload",
    "holding_time_distribution",
    "model_fingerprint",
    "replay_link",
    "replay_workload",
    "summary_to_dict",
    "summary_to_json",
    "write_summary",
]
