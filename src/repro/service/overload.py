"""Explicit overload semantics: shedding, queueing, circuit breaking.

ROADMAP item 2 asks for "documented backpressure behavior past
saturation".  Before this module the admission service had none: every
request paid a full table lookup no matter how far past saturation the
offered load ran, and a failing table lookup took the whole shard
down.  This module gives overload three defined, *deterministic*
behaviors:

* **bounded admission queue** — each decision occupies a virtual
  decision server for ``decision_seconds``; a request arriving to a
  full queue (``max_queue_depth`` waiting) is **shed** before any
  table work, counted on ``service.shed``.  The queue is virtual-time
  bookkeeping over the workload's own arrival clock, so shedding
  depends only on the seed — never on wall-clock noise — and the
  shed count is part of the byte-identity contract.
* **circuit breaker** — table lookups that raise (corrupt table file,
  injected chaos, a policy whose offline inversion diverges) trip the
  breaker after ``breaker_failure_threshold`` consecutive failures.
  While OPEN, requests skip the primary policy entirely and are
  decided by the conservative **fallback** (peak-rate allocation — the
  paper's zero-risk bound); after ``breaker_cooldown`` requests a
  probe retries the primary (HALF_OPEN) and success closes the
  breaker.  Transitions are counted on ``service.breaker_opened`` /
  ``service.breaker_recovered``; every fallback decision on
  ``service.fallback_decisions`` and flagged on the decision itself.

Both mechanisms snapshot and restore exactly (hex floats, integer
counters), so a shard recovered from its journal sheds and trips
byte-identically to a shard that never crashed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.exceptions import ParameterError
from repro.utils.validation import check_integer

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "OverloadPolicy",
    "OverloadState",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

_BREAKER_STATES = (BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN)


@dataclass(frozen=True)
class OverloadPolicy:
    """The knob bundle for overload behavior (picklable, frozen).

    Parameters
    ----------
    max_queue_depth:
        Requests that may wait for the virtual decision server before
        arrivals are shed.
    decision_seconds:
        Virtual service time one admission decision occupies.  The
        default 0.0 makes the queue infinitely fast — nothing is ever
        shed — so engines constructed with a policy but no explicit
        rate keep legacy behavior.
    breaker_failure_threshold:
        Consecutive primary-lookup failures that trip the breaker.
    breaker_cooldown:
        Requests decided by the fallback before a HALF_OPEN probe
        retries the primary policy.  Counted in requests, not seconds,
        so recovery is deterministic under replay.
    fallback_method:
        The conservative policy served while the breaker is open
        (default ``peak-rate`` — zero statistical-multiplexing risk).
    """

    max_queue_depth: int = 64
    decision_seconds: float = 0.0
    breaker_failure_threshold: int = 1
    breaker_cooldown: int = 64
    fallback_method: str = "peak-rate"

    def __post_init__(self) -> None:
        check_integer(self.max_queue_depth, "max_queue_depth", minimum=1)
        if self.decision_seconds < 0:
            raise ParameterError(
                f"decision_seconds must be >= 0, got {self.decision_seconds!r}"
            )
        check_integer(
            self.breaker_failure_threshold,
            "breaker_failure_threshold",
            minimum=1,
        )
        check_integer(self.breaker_cooldown, "breaker_cooldown", minimum=1)


class AdmissionQueue:
    """A virtual M/D/1-style decision queue over the workload clock.

    ``offer(now)`` drains virtual completions up to ``now``, then
    either enqueues the request (returning True) or sheds it (False)
    when ``max_depth`` decisions are already waiting.  All arithmetic
    runs on the workload's deterministic arrival times.
    """

    def __init__(self, max_depth: int, decision_seconds: float):
        self.max_depth = check_integer(max_depth, "max_depth", minimum=1)
        if decision_seconds < 0:
            raise ParameterError(
                f"decision_seconds must be >= 0, got {decision_seconds!r}"
            )
        self.decision_seconds = float(decision_seconds)
        self._completions: Deque[float] = deque()
        self.shed_total = 0

    def offer(self, now: float) -> bool:
        """Admit one request to the decision server, or shed it."""
        completions = self._completions
        while completions and completions[0] <= now:
            completions.popleft()
        if len(completions) >= self.max_depth:
            self.shed_total += 1
            return False
        start = completions[-1] if completions else now
        completions.append(max(start, now) + self.decision_seconds)
        return True

    @property
    def depth(self) -> int:
        """Decisions currently occupying the virtual server."""
        return len(self._completions)

    def state_dict(self) -> dict:
        return {
            "completions": [t.hex() for t in self._completions],
            "shed_total": self.shed_total,
        }

    def restore_state(self, state: dict) -> None:
        self._completions = deque(
            float.fromhex(t) for t in state["completions"]
        )
        self.shed_total = int(state["shed_total"])


class CircuitBreaker:
    """Consecutive-failure breaker with request-counted cooldown.

    State machine: CLOSED -> (``failure_threshold`` consecutive
    failures) -> OPEN -> (``cooldown`` denied primaries) -> HALF_OPEN
    -> success closes / failure reopens.  Purely counter-driven, so a
    replayed request stream drives identical transitions.
    """

    def __init__(self, failure_threshold: int = 1, cooldown: int = 64):
        self.failure_threshold = check_integer(
            failure_threshold, "failure_threshold", minimum=1
        )
        self.cooldown = check_integer(cooldown, "cooldown", minimum=1)
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.cooldown_left = 0
        self.opens = 0
        self.recoveries = 0

    def allow_primary(self) -> bool:
        """Whether the next decision may consult the primary policy."""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_HALF_OPEN:
            return True
        self.cooldown_left -= 1
        if self.cooldown_left <= 0:
            self.state = BREAKER_HALF_OPEN
        return False

    def record_success(self) -> bool:
        """Primary lookup succeeded; returns True on a CLOSED recovery."""
        recovered = self.state != BREAKER_CLOSED
        if recovered:
            self.recoveries += 1
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        return recovered

    def record_failure(self) -> bool:
        """Primary lookup failed; returns True when the breaker opens."""
        self.consecutive_failures += 1
        if (
            self.state == BREAKER_HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            self.state = BREAKER_OPEN
            self.cooldown_left = self.cooldown
            self.opens += 1
            return True
        return False

    def state_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "cooldown_left": self.cooldown_left,
            "opens": self.opens,
            "recoveries": self.recoveries,
        }

    def restore_state(self, state: dict) -> None:
        if state["state"] not in _BREAKER_STATES:
            raise ParameterError(
                f"unknown breaker state {state['state']!r}"
            )
        self.state = state["state"]
        self.consecutive_failures = int(state["consecutive_failures"])
        self.cooldown_left = int(state["cooldown_left"])
        self.opens = int(state["opens"])
        self.recoveries = int(state["recoveries"])


class OverloadState:
    """The live queue + breaker pair one engine owns."""

    def __init__(self, policy: OverloadPolicy):
        self.policy = policy
        self.queue = AdmissionQueue(
            policy.max_queue_depth, policy.decision_seconds
        )
        self.breaker = CircuitBreaker(
            policy.breaker_failure_threshold, policy.breaker_cooldown
        )
        self.fallback_total = 0

    def state_dict(self) -> dict:
        return {
            "queue": self.queue.state_dict(),
            "breaker": self.breaker.state_dict(),
            "fallback_total": self.fallback_total,
        }

    def restore_state(self, state: dict) -> None:
        self.queue.restore_state(state["queue"])
        self.breaker.restore_state(state["breaker"])
        self.fallback_total = int(state["fallback_total"])
