"""The ``serve`` and ``drive`` command-line verbs.

Reachable both directly and through the experiment runner::

    python -m repro.experiments.runner serve --links 16 --shards 4
    python -m repro.experiments.runner drive --links 4 --shards 2 \\
        --requests 25000 --rho 0.6 --rho 0.9 --rho 0.99 --jobs 2

``serve`` starts the asyncio admission frontend
(:mod:`repro.service.frontend`): newline-delimited JSON over TCP,
links placed on shards by consistent hashing, decision tables
published once as an immutable shared-memory snapshot.  ``drive``
runs the open-loop rho-driven load generator
(:mod:`repro.service.drive`) against the same sharded data plane and
prints the latency-vs-rho table: for each rho the arrival rate is
``rho x admissible N / mean holding``, and the row reports
p50/p99/p999 admit latency from the merged
``service.admit_latency_ns`` sketches plus aggregate decisions/s.

``--max-queue``/``--decision-rate`` arm the PR-7 overload policy —
drive rho past 1 and the shed/breaker counters follow the documented
backpressure contract (``docs/ROBUSTNESS.md``) byte-for-byte.
``--report-out`` writes the machine-readable report
(``kind: latency_vs_rho``, same shape as ``obs sweep --json``);
``--timings`` appends a schema-2 row to ``timings.jsonl`` so the
sweep's throughput rides the existing ``obs compare`` perf gate.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from repro.atm.qos import QoSRequirement
from repro.exceptions import ReproError
from repro.service.cli import CLASS_PRESETS, build_class
from repro.service.drive import DriveReport, drive
from repro.service.frontend import AdmissionFrontend, FrontendServer
from repro.service.overload import OverloadPolicy
from repro.service.tables import SERVICE_METHODS
from repro.utils.units import mbps_to_cells_per_frame

__all__ = ["build_parser", "format_drive_report", "main"]

DEFAULT_RHO_GRID = (0.6, 0.8, 0.9, 0.95, 0.99)


def _add_shared_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags both verbs share, matching the ``workload`` conventions."""
    parser.add_argument(
        "--links",
        type=int,
        default=4,
        metavar="L",
        help="independent links the frontend serves (default 4)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="consistent-hash shards (serve: default 1; drive: "
        "default --jobs)",
    )
    parser.add_argument(
        "--class",
        dest="classes",
        action="append",
        type=build_class,
        metavar="NAME[:WEIGHT]",
        help="offered class (repeatable); presets: "
        + ", ".join(f"{k} = {v}" for k, v in sorted(CLASS_PRESETS.items()))
        + " (default: video)",
    )
    parser.add_argument(
        "--policy",
        choices=SERVICE_METHODS,
        default="bahadur-rao",
        help="admission policy (default bahadur-rao)",
    )
    parser.add_argument(
        "--capacity-mbps",
        type=float,
        default=155.52,
        metavar="MBPS",
        help="link rate in Mbit/s (default 155.52, OC-3)",
    )
    parser.add_argument(
        "--delay-ms",
        type=float,
        default=20.0,
        metavar="MS",
        help="per-node QoS delay budget (default 20 msec)",
    )
    parser.add_argument(
        "--clr",
        type=float,
        default=1e-6,
        metavar="P",
        help="QoS cell loss rate target (default 1e-6)",
    )
    parser.add_argument(
        "--table-cache",
        metavar="FILE",
        default=None,
        help="persist decision tables as JSONL at FILE (warmed before "
        "the snapshot is published)",
    )
    overload = parser.add_argument_group("overload policy")
    overload.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="DEPTH",
        help="bound each link's admission queue at DEPTH outstanding "
        "decisions; arrivals past the bound are shed deterministically",
    )
    overload.add_argument(
        "--decision-rate",
        type=float,
        default=None,
        metavar="PER_SEC",
        help="modelled decision service rate (decisions/second on the "
        "workload clock); required for --max-queue to ever shed",
    )
    overload.add_argument(
        "--breaker-cooldown",
        type=int,
        default=64,
        metavar="N",
        help="requests the circuit breaker stays open before probing "
        "the primary policy again (default 64)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-frontend",
        description="sharded admission frontend: serve it, or drive "
        "it open-loop over a rho grid",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve",
        help="start the asyncio admission frontend (line-JSON over TCP)",
    )
    _add_shared_arguments(serve)
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="listen address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="PORT",
        help="listen port (default 0: pick a free one and print it)",
    )

    drive_parser = sub.add_parser(
        "drive",
        help="open-loop rho sweep against the sharded frontend",
    )
    _add_shared_arguments(drive_parser)
    drive_parser.add_argument(
        "--rho",
        action="append",
        type=float,
        metavar="R",
        help="utilization grid point; offered load is rho x admissible "
        "N Erlangs (repeatable; default "
        + " ".join(str(r) for r in DEFAULT_RHO_GRID)
        + ")",
    )
    drive_parser.add_argument(
        "--requests",
        type=int,
        default=10_000,
        metavar="N",
        help="connection requests per link per rho point (default 10000)",
    )
    drive_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run shards across N worker processes; per-link counters "
        "are byte-identical to --jobs 1 (default 1)",
    )
    drive_parser.add_argument(
        "--pool",
        choices=("warm", "spawn"),
        default=None,
        help="worker-pool discipline for --jobs > 1: 'warm' (default; "
        "persistent workers) or 'spawn' (fresh processes per sweep)",
    )
    drive_parser.add_argument(
        "--seed",
        type=int,
        default=20260806,
        metavar="S",
        help="workload seed; per-link streams are SeedSequence children",
    )
    drive_parser.add_argument(
        "--holding-mean",
        type=float,
        default=90.0,
        metavar="SECONDS",
        help="mean connection holding time (default 90 s)",
    )
    drive_parser.add_argument(
        "--heavy-tailed",
        action="store_true",
        help="draw holding times from the heavy-tailed "
        "(exponential-body/Pareto-tail) session law instead of "
        "exponential",
    )
    drive_parser.add_argument(
        "--tail-gamma",
        type=float,
        default=1.5,
        metavar="G",
        help="tail exponent for --heavy-tailed, in (1, 2) (default 1.5)",
    )
    drive_parser.add_argument(
        "--regime-plan",
        metavar="PLAN",
        default=None,
        help="nonstationary regime schedule 'name@start[xMULT],...' "
        "(see repro.adaptive.nonstationary); the per-regime rate "
        "multiplier scales the rho-derived arrival rate",
    )
    drive_parser.add_argument(
        "--report-out",
        metavar="FILE",
        default=None,
        help="write the latency-vs-rho report as JSON to FILE",
    )
    drive_parser.add_argument(
        "--timings",
        metavar="FILE",
        default=None,
        help="append a schema-2 throughput row to this timings.jsonl "
        "(rides the obs compare perf gate)",
    )
    drive_parser.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of the table",
    )
    return parser


def _overload_from_args(args, parser) -> Optional[OverloadPolicy]:
    if args.max_queue is None:
        return None
    if args.decision_rate is not None and args.decision_rate <= 0:
        parser.error("--decision-rate must be > 0")
    return OverloadPolicy(
        max_queue_depth=args.max_queue,
        decision_seconds=(
            1.0 / args.decision_rate
            if args.decision_rate is not None
            else 0.0
        ),
        breaker_cooldown=args.breaker_cooldown,
    )


def _fmt_ns(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.1f}us"
    return f"{value:.0f}ns"


def format_drive_report(report: DriveReport) -> str:
    """The human latency-vs-rho table."""
    lines = [
        f"frontend drive: policy={report.policy} links={report.n_links} "
        f"shards={report.n_shards} jobs={report.jobs} "
        f"admissible N={report.admissible} "
        f"requests/link/point={report.requests_per_link}",
        f"{'rho':>6} {'erlangs':>9} {'requests':>9} {'admit':>8} "
        f"{'block':>7} {'shed':>7} {'p50':>9} {'p99':>9} {'p999':>9} "
        f"{'decisions/s':>12}",
    ]
    for point in report.points:
        q = point.admit_latency_ns
        lines.append(
            f"{point.rho:>6.3f} {point.offered_erlangs:>9.1f} "
            f"{point.n_requests:>9d} {point.admitted:>8d} "
            f"{point.blocked:>7d} {point.shed:>7d} "
            f"{_fmt_ns(q.get('p0.5')):>9} {_fmt_ns(q.get('p0.99')):>9} "
            f"{_fmt_ns(q.get('p0.999')):>9} "
            f"{point.decisions_per_second:>12,.0f}"
        )
    lines.append(
        f"boundary violations: {report.boundary_violations} "
        f"(must be 0)"
    )
    return "\n".join(lines)


def _append_drive_timing(path: str, report: DriveReport) -> None:
    from repro.obs.timings import append_timing_row

    walls = [p.wall_seconds for p in report.points]
    total_wall = sum(walls)
    record = {
        "experiment": "frontend_drive",
        "scale": (
            f"links{report.n_links}x{report.requests_per_link}"
            f"@{len(report.points)}rho"
        ),
        "jobs": report.jobs,
        "rounds": len(report.points),
        "mean_s": total_wall / len(walls),
        "min_s": min(walls),
        "max_s": max(walls),
        "stddev_s": None,
        "requests": report.n_requests,
        "requests_per_s": (
            report.n_requests / total_wall if total_wall else 0.0
        ),
        "shards": report.n_shards,
        "boundary_violations": report.boundary_violations,
    }
    append_timing_row(path, record)
    print(f"[timings row appended to {path}]")


async def _serve(frontend: AdmissionFrontend, host: str, port: int) -> None:
    server = FrontendServer(frontend, host=host, port=port)
    await server.start()
    print(
        f"frontend listening on {server.host}:{server.port} "
        f"({frontend.stats().n_links} links, "
        f"{frontend.stats().n_shards} shards); Ctrl-C stops",
        flush=True,
    )
    try:
        await server.serve_forever()
    finally:
        await server.stop()


def _cmd_serve(args, parser) -> int:
    classes = args.classes or [build_class("video")]
    capacity = mbps_to_cells_per_frame(args.capacity_mbps)
    qos = QoSRequirement(
        max_delay_seconds=args.delay_ms / 1000.0, max_clr=args.clr
    )
    overload = _overload_from_args(args, parser)
    link_ids = [f"link-{i}" for i in range(args.links)]
    try:
        with AdmissionFrontend(
            classes,
            link_ids,
            capacity=capacity,
            qos=qos,
            policy=args.policy,
            n_shards=args.shards if args.shards is not None else 1,
            overload=overload,
            table_path=args.table_cache,
        ) as frontend:
            asyncio.run(_serve(frontend, args.host, args.port))
    except KeyboardInterrupt:
        print("frontend stopped")
    except ReproError as exc:
        parser.error(str(exc))
    return 0


def _cmd_drive(args, parser) -> int:
    classes = args.classes or [build_class("video")]
    capacity = mbps_to_cells_per_frame(args.capacity_mbps)
    qos = QoSRequirement(
        max_delay_seconds=args.delay_ms / 1000.0, max_clr=args.clr
    )
    overload = _overload_from_args(args, parser)
    rho_grid = tuple(args.rho) if args.rho else DEFAULT_RHO_GRID
    regime_plan = None
    regime_classes = None
    if args.regime_plan is not None:
        from repro.adaptive.nonstationary import parse_regime_plan

        try:
            regime_plan = parse_regime_plan(args.regime_plan)
        except ReproError as exc:
            parser.error(str(exc))
        known = {cls.name for cls in classes}
        extra = sorted(
            {r.class_name for r in regime_plan.regimes} - known
        )
        regime_classes = tuple(classes) + tuple(
            build_class(name) for name in extra
        )
    try:
        report = drive(
            classes,
            n_links=args.links,
            capacity=capacity,
            qos=qos,
            policy=args.policy,
            rho_grid=rho_grid,
            requests_per_link=args.requests,
            mean_holding_time=args.holding_mean,
            holding="heavy-tailed" if args.heavy_tailed else "exponential",
            tail_gamma=args.tail_gamma,
            n_shards=args.shards,
            seed=args.seed,
            jobs=args.jobs if args.jobs > 1 else None,
            pool=args.pool,
            overload=overload,
            table_path=args.table_cache,
            regime_plan=regime_plan,
            regime_classes=regime_classes,
        )
    except ReproError as exc:
        parser.error(str(exc))

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_drive_report(report))
    if args.report_out is not None:
        with open(args.report_out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[report written to {args.report_out}]")
    if args.timings is not None:
        _append_drive_timing(args.timings, report)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.links < 1:
        parser.error(f"--links must be >= 1, got {args.links}")
    if args.shards is not None and args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if args.command == "serve":
        return _cmd_serve(args, parser)
    if getattr(args, "requests", 1) < 1:
        parser.error(f"--requests must be >= 1, got {args.requests}")
    if getattr(args, "jobs", 1) < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    return _cmd_drive(args, parser)


if __name__ == "__main__":
    sys.exit(main())
