"""Event-sourced, checksummed link journals for crash recovery.

A link shard that dies mid-replay must not cost the whole run: the
supervisor (:mod:`repro.service.supervision`) restarts it, and the
restarted attempt recovers the link's exact state from the journal the
dead attempt left behind.  "Exact" is load-bearing — the repo-wide
contract is that a recovered replay is **byte-identical** to a
fault-free one, so the journal carries floats as ``float.hex()``
round-trips and running accumulators as stored values, never as sums
to be recomputed (float addition is not associative).

File format — append-only JSONL, one checksummed record per line::

    {"crc": <crc32 of canonical data JSON>, "data": {...}}

with three record types in ``data``:

* ``header``   — version, run fingerprint, attempt number (always the
  first line);
* ``event``    — one admission decision: sequence number ``seq``, the
  outcome ``k`` (``"a"`` admitted / ``"b"`` blocked / ``"s"`` shed),
  and ``fb`` when the decision came from the fallback policy;
* ``snapshot`` — the full link state after event ``seq`` (engine
  bookkeeping, departure heap, table counters, overload state), so
  recovery replays only the post-snapshot suffix.

Crash semantics: every attempt writes its **own** file
(``<prefix>.a<N>.jsonl``), and recovery reads prior attempts
read-only.  This is epoch fencing — a hung stale worker that wakes up
and keeps appending to *its* file can never race the restarted
attempt's writes.  A torn final line (crash mid-append) is expected
damage: :func:`load_journal` discards it, counts it on the
``service.journal.torn_tail_recovered`` counter, and recovery loses at
most the one decision that was being written — which the restarted
attempt recomputes deterministically anyway.  Damage *before* the tail
(bit flips, duplicate or gapped sequence numbers, a foreign
fingerprint) raises :class:`~repro.exceptions.JournalError`: that file
is lying, and replaying a lie would silently corrupt the run.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.exceptions import JournalError
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.utils.validation import check_integer

__all__ = [
    "JOURNAL_VERSION",
    "JournalEvent",
    "JournalRecovery",
    "LinkJournal",
    "atomic_write_text",
    "decode_line",
    "encode_line",
    "find_recovery",
    "journal_path",
    "load_journal",
]

#: Bumped only on incompatible format changes; readers reject others.
JOURNAL_VERSION = 1

#: Event kinds: admitted, blocked, shed.
EVENT_KINDS = ("a", "b", "s")


def atomic_write_text(path, text: str) -> Path:
    """Write ``text`` to ``path`` with crash-safe replace semantics.

    Write-temp + fsync + rename: a crash at any instant leaves either
    the complete old file or the complete new file, never a torn mix.
    Shared by the decision-table store and journal snapshot tooling.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.tmp-{os.getpid()}"
    with tmp.open("w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    # Persist the rename itself; not every filesystem supports opening
    # a directory, so failure here downgrades durability, not safety.
    try:
        dir_fd = os.open(str(path.parent), os.O_RDONLY)
    except OSError:
        return path
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def encode_line(data: dict) -> str:
    """One checksummed JSONL record (no trailing newline)."""
    canonical = json.dumps(data, sort_keys=True)
    crc = zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF
    return json.dumps({"crc": crc, "data": data}, sort_keys=True)


def decode_line(line: str) -> dict:
    """Verify one record's CRC and return its ``data`` payload.

    Raises :class:`~repro.exceptions.JournalError` on any damage; the
    caller decides whether the position (tail vs middle) makes the
    damage recoverable.
    """
    try:
        wrapper = json.loads(line)
        crc = wrapper["crc"]
        data = wrapper["data"]
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalError(f"undecodable journal line: {exc}") from exc
    canonical = json.dumps(data, sort_keys=True)
    expected = zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF
    if crc != expected:
        raise JournalError(
            f"journal line CRC mismatch (stored {crc}, computed {expected})"
        )
    if not isinstance(data, dict):
        raise JournalError(
            f"journal record payload must be an object, got {type(data)}"
        )
    return data


def journal_path(prefix, attempt: int) -> Path:
    """The journal file of one ``(shard prefix, attempt)`` epoch."""
    prefix = Path(prefix)
    return prefix.parent / f"{prefix.name}.a{int(attempt)}.jsonl"


@dataclass(frozen=True)
class JournalEvent:
    """One journaled admission outcome."""

    seq: int
    kind: str  # "a" admitted / "b" blocked / "s" shed
    fallback: bool = False


@dataclass(frozen=True)
class JournalRecovery:
    """Everything a restarted attempt needs to resume exactly.

    ``snapshot_state`` is the raw snapshot dict (or None when the dead
    attempt never reached a snapshot); ``events`` are the decisions
    journaled after it, to be re-applied in order; ``next_seq`` is the
    first request the live loop processes fresh.
    """

    path: Path
    attempt: int
    snapshot_seq: int
    snapshot_state: Optional[dict]
    events: Tuple[JournalEvent, ...]
    next_seq: int
    torn_tail: bool


class LinkJournal:
    """Append-only writer for one shard attempt's event journal.

    ``sync_every`` bounds the fsync amortization: an fsync every N
    events caps post-crash loss at N decisions (each recomputed
    deterministically on restart) without paying a disk flush per
    request.
    """

    def __init__(
        self,
        path,
        fingerprint: str,
        *,
        attempt: int = 0,
        sync_every: int = 256,
    ):
        self.path = Path(path)
        self.fingerprint = str(fingerprint)
        self.attempt = check_integer(attempt, "attempt", minimum=0)
        self.sync_every = check_integer(sync_every, "sync_every", minimum=1)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._since_sync = 0
        # Fresh file per attempt — epoch fencing (see module docstring).
        self._fh = self.path.open("w", encoding="utf-8")
        self._write(
            {
                "type": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": self.fingerprint,
                "attempt": self.attempt,
            }
        )
        self.sync()

    def _write(self, data: dict) -> None:
        self._fh.write(encode_line(data) + "\n")
        self._since_sync += 1
        if self._since_sync >= self.sync_every:
            self.sync()

    def event(self, seq: int, kind: str, *, fallback: bool = False) -> None:
        """Journal one admission outcome."""
        record = {"type": "event", "seq": int(seq), "k": kind}
        if fallback:
            record["fb"] = 1
        self._write(record)

    def snapshot(self, seq: int, state: dict) -> None:
        """Journal the full post-``seq`` link state and fsync it."""
        self._write({"type": "snapshot", "seq": int(seq), "state": state})
        self.sync()

    def torn_event(self, seq: int, kind: str, *, fallback: bool = False) -> None:
        """Chaos hook: crash mid-append, leaving a torn final line.

        Writes (and fsyncs) the first half of the encoded record with
        no newline — exactly what a power loss mid-``write`` leaves
        behind — so tests and the chaos CLI can prove torn-tail
        recovery on demand.
        """
        record = {"type": "event", "seq": int(seq), "k": kind}
        if fallback:
            record["fb"] = 1
        line = encode_line(record)
        self._fh.write(line[: len(line) // 2])
        self.sync()

    def sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._since_sync = 0

    def close(self) -> None:
        if not self._fh.closed:
            self.sync()
            self._fh.close()

    def __enter__(self) -> "LinkJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_journal(path, fingerprint: str) -> Optional[JournalRecovery]:
    """Read one attempt's journal back into a recovery plan.

    Returns None when the file is missing or empty (nothing to
    recover).  A torn final line is discarded and counted; any earlier
    damage raises :class:`~repro.exceptions.JournalError`.
    """
    path = Path(path)
    if not path.exists() or path.stat().st_size == 0:
        return None
    raw = path.read_text(encoding="utf-8")
    lines = raw.split("\n")
    # A well-formed journal ends with a newline, so the final split
    # element is empty; anything else is a torn tail candidate.
    torn_candidate = lines[-1] != ""
    lines = [line for line in lines[:-1] if line] + (
        [lines[-1]] if torn_candidate else []
    )
    if not lines:
        return None

    torn_tail = False
    records: List[dict] = []
    last = len(lines) - 1
    for position, line in enumerate(lines):
        try:
            records.append(decode_line(line))
        except JournalError:
            if position == last:
                # Crash mid-append: drop the torn record, recover.
                torn_tail = True
                break
            raise JournalError(
                f"{path}: corrupt journal line {position + 1} of "
                f"{len(lines)} (not the tail — refusing to recover)"
            )
    if torn_candidate and not torn_tail and lines:
        # The last line decoded cleanly but had no newline: the crash
        # landed exactly between payload and terminator.  The record
        # is complete, keep it.
        pass
    if torn_tail and _spans._ENABLED:
        _metrics.add("service.journal.torn_tail_recovered")

    if not records:
        return None
    header = records[0]
    if header.get("type") != "header":
        raise JournalError(f"{path}: first journal record is not a header")
    if header.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"{path}: journal version {header.get('version')!r} != "
            f"{JOURNAL_VERSION}"
        )
    if header.get("fingerprint") != str(fingerprint):
        raise JournalError(
            f"{path}: journal fingerprint {header.get('fingerprint')!r} "
            f"does not match this run ({fingerprint!r}); refusing to "
            "replay another run's events"
        )
    attempt = int(header.get("attempt", 0))

    snapshot_state: Optional[dict] = None
    snapshot_seq = -1
    events: List[JournalEvent] = []
    last_seq: Optional[int] = None
    for record in records[1:]:
        kind = record.get("type")
        if kind == "snapshot":
            seq = int(record["seq"])
            if last_seq is not None and seq != last_seq:
                raise JournalError(
                    f"{path}: snapshot at seq {seq} does not match the "
                    f"preceding event seq {last_seq}"
                )
            snapshot_state = record["state"]
            snapshot_seq = seq
            last_seq = seq
            events = []  # only the post-snapshot suffix replays
        elif kind == "event":
            seq = int(record["seq"])
            if last_seq is None:
                if seq != 0:
                    raise JournalError(
                        f"{path}: first event seq is {seq}, expected 0"
                    )
            elif seq == last_seq:
                raise JournalError(
                    f"{path}: duplicate event seq {seq}"
                )
            elif seq != last_seq + 1:
                raise JournalError(
                    f"{path}: event seq gap ({last_seq} -> {seq})"
                )
            outcome = record.get("k")
            if outcome not in EVENT_KINDS:
                raise JournalError(
                    f"{path}: unknown event kind {outcome!r} at seq {seq}"
                )
            events.append(
                JournalEvent(
                    seq=seq, kind=outcome, fallback=bool(record.get("fb"))
                )
            )
            last_seq = seq
        else:
            raise JournalError(
                f"{path}: unknown journal record type {kind!r}"
            )

    next_seq = 0 if last_seq is None else last_seq + 1
    return JournalRecovery(
        path=path,
        attempt=attempt,
        snapshot_seq=snapshot_seq,
        snapshot_state=snapshot_state,
        events=tuple(events),
        next_seq=next_seq,
        torn_tail=torn_tail,
    )


def find_recovery(
    prefix, attempt: int, fingerprint: str
) -> Optional[JournalRecovery]:
    """The newest prior attempt's journal to recover from, if any.

    Attempt N recovers from the highest attempt < N that left a
    readable journal; attempt 0 has nothing to recover (a fresh run).
    Prior files are read, never modified — a hung stale writer keeps
    appending to its own epoch without disturbing us.
    """
    for previous in range(int(attempt) - 1, -1, -1):
        recovery = load_journal(journal_path(prefix, previous), fingerprint)
        if recovery is not None:
            if _spans._ENABLED:
                _metrics.add(
                    "service.journal.events_recovered", len(recovery.events)
                )
            return recovery
    return None
