"""The async sharded admission frontend.

ROADMAP open item 1's last structural piece: where
:mod:`repro.service.replay` *replays* a recorded workload,
this module *serves* admission — accept admit/release requests (over
a socket, or through the in-process API the benchmarks and the
open-loop driver use), route each link to its shard, and answer from
the cached decision tables in microseconds.

Three design rules, each load-bearing at scale:

* **consistent hashing** — :class:`ConsistentHashRing` maps link ids
  onto shards through a ring of SHA-256-placed virtual nodes.  The
  mapping is a pure function of ``(link_id, n_shards, replicas)``:
  every process (frontend, open-loop drive workers, a future fleet)
  computes the same placement without coordination, and growing the
  shard count moves only ``~1/n`` of the links.
* **immutable table snapshot** — the decision tables are computed
  once, serialized to the JSONL image :meth:`DecisionTableCache
  .dump_text` emits, and published through
  :mod:`repro.parallel.shm` as one read-only segment.  Every shard
  loads its private cache from that snapshot, so the admission hot
  path never takes a cross-shard lock and never pickles a table —
  the PR-8 transport, now serving the frontend.
* **engine-per-link shards** — a shard owns the
  :class:`~repro.service.engine.AdmissionEngine` of every link the
  ring assigns it, all sharing the shard's snapshot-loaded cache.
  Overload state stays per link, so the PR-7 backpressure contract
  (bounded queue shedding, breaker fallback — ``docs/ROBUSTNESS.md``)
  holds byte-for-byte regardless of how links land on shards.

The wire protocol (``docs/SERVICE.md``) is newline-delimited JSON:
one request object per line, one response object per line, pipelined
freely.  ``runner serve`` binds it to a TCP socket;
:class:`FrontendServer` is the asyncio implementation.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atm.qos import QoSRequirement
from repro.exceptions import ParameterError, ReproError
from repro.parallel.shm import SharedBlob, attach_blob, publish_blob
from repro.service.engine import AdmissionDecision, AdmissionEngine
from repro.service.overload import OverloadPolicy
from repro.service.tables import (
    SERVICE_METHODS,
    DecisionTableCache,
)
from repro.service.workload import ConnectionClass
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "AdmissionFrontend",
    "ConsistentHashRing",
    "FrontendServer",
    "FrontendStats",
    "build_table_snapshot",
]


class ConsistentHashRing:
    """Deterministic consistent hashing of string keys onto shards.

    Each shard contributes ``replicas`` virtual nodes placed by
    SHA-256 (stable across processes, platforms, and Python hash
    randomization — ``hash()`` is deliberately *not* used).  A key
    belongs to the first virtual node clockwise of its own hash.
    """

    def __init__(self, n_shards: int, *, replicas: int = 64):
        self.n_shards = check_integer(n_shards, "n_shards", minimum=1)
        self.replicas = check_integer(replicas, "replicas", minimum=1)
        points: List[Tuple[int, int]] = []
        for shard in range(self.n_shards):
            for replica in range(self.replicas):
                points.append((self._hash(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
        )

    def shard_for(self, key: str) -> int:
        """The shard index owning ``key``."""
        index = bisect_right(self._hashes, self._hash(key))
        if index == len(self._hashes):
            index = 0
        return self._shards[index]

    def assign(self, keys: Sequence[str]) -> List[List[str]]:
        """Partition ``keys`` into per-shard lists (ring order kept)."""
        groups: List[List[str]] = [[] for _ in range(self.n_shards)]
        for key in keys:
            groups[self.shard_for(key)].append(key)
        return groups

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(n_shards={self.n_shards}, "
            f"replicas={self.replicas})"
        )


def build_table_snapshot(
    classes: Sequence[ConnectionClass],
    *,
    capacity: float,
    qos: QoSRequirement,
    policy: str,
    fallback_method: str = "peak-rate",
    table_path=None,
) -> str:
    """Warm a staging cache and return its immutable JSONL image.

    Every decision the frontend can be asked for — each class under
    the primary policy and under the breaker's conservative fallback —
    is computed exactly once here, so shards constructed from the
    snapshot never pay an offline inversion on the admission path.
    ``table_path`` seeds the staging cache from (and persists new
    entries to) an existing JSONL table file.
    """
    staging = DecisionTableCache(path=table_path)
    for cls in classes:
        staging.lookup(cls.model, capacity, qos, policy)
        if fallback_method != policy:
            staging.lookup(cls.model, capacity, qos, fallback_method)
    return staging.dump_text()


@dataclass(frozen=True)
class FrontendStats:
    """Aggregate decision counters across every shard."""

    n_shards: int
    n_links: int
    admitted: int
    blocked: int
    shed: int
    fallbacks: int
    released: int
    #: Monotone counter of completed table republishes (hot swaps).
    table_generation: int = 0

    @property
    def requests(self) -> int:
        return self.admitted + self.blocked + self.shed

    def to_dict(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "n_links": self.n_links,
            "admitted": self.admitted,
            "blocked": self.blocked,
            "shed": self.shed,
            "fallbacks": self.fallbacks,
            "released": self.released,
            "requests": self.requests,
            "table_generation": self.table_generation,
        }


@dataclass
class _Shard:
    """One shard: a snapshot-loaded cache and its links' engines."""

    index: int
    tables: DecisionTableCache
    engines: Dict[str, AdmissionEngine] = field(default_factory=dict)
    admitted: int = 0
    blocked: int = 0
    shed: int = 0
    fallbacks: int = 0
    released: int = 0


class AdmissionFrontend:
    """In-process surface of the sharded admission service.

    Parameters
    ----------
    classes:
        The servable traffic classes; requests name one by its
        ``ConnectionClass.name``.
    link_ids:
        Every link the frontend serves.  Each is hashed onto a shard
        and registered with that shard's engine at ``capacity`` /
        ``qos``.
    policy:
        Admission policy, one of
        :data:`~repro.service.tables.SERVICE_METHODS`.
    n_shards:
        Shard count (engines grouped per shard; each shard owns a
        private decision-table cache loaded from the shared snapshot).
    overload:
        Optional :class:`~repro.service.overload.OverloadPolicy`
        applied *per link* — the PR-7 backpressure contract.
    table_path:
        Optional JSONL table file warming the snapshot.
    publish:
        Publish the table snapshot through shared memory (the default;
        the open-loop drive workers attach the same segment).  With
        ``False`` the snapshot stays an in-process string — useful for
        tests on platforms without shared memory.
    """

    def __init__(
        self,
        classes: Sequence[ConnectionClass],
        link_ids: Sequence[str],
        *,
        capacity: float,
        qos: Optional[QoSRequirement] = None,
        policy: str = "bahadur-rao",
        n_shards: int = 1,
        overload: Optional[OverloadPolicy] = None,
        ring_replicas: int = 64,
        table_path=None,
        publish: bool = True,
    ):
        if policy not in SERVICE_METHODS:
            raise ParameterError(
                f"unknown admission policy {policy!r}; choose from "
                f"{', '.join(SERVICE_METHODS)}"
            )
        if not classes:
            raise ParameterError("frontend needs at least one ConnectionClass")
        if not link_ids:
            raise ParameterError("frontend needs at least one link id")
        if len(set(link_ids)) != len(link_ids):
            raise ParameterError(f"link ids must be unique, got {link_ids}")
        check_positive(capacity, "capacity")
        self.policy = policy
        self.capacity = float(capacity)
        self.qos = qos if qos is not None else QoSRequirement()
        self.overload = overload
        self._classes: Dict[str, ConnectionClass] = {}
        for cls in classes:
            if cls.name in self._classes:
                raise ParameterError(
                    f"class names must be unique, got duplicate {cls.name!r}"
                )
            self._classes[cls.name] = cls
        self.ring = ConsistentHashRing(n_shards, replicas=ring_replicas)
        fallback = (
            overload.fallback_method if overload is not None else "peak-rate"
        )
        self.table_text = build_table_snapshot(
            classes,
            capacity=self.capacity,
            qos=self.qos,
            policy=policy,
            fallback_method=fallback,
            table_path=table_path,
        )
        self._table_handle: Optional[SharedBlob] = None
        self._publish = bool(publish)
        #: Monotone table generation: bumped by every completed
        #: :meth:`republish` (the adaptive hot-swap path).
        self.generation = 0
        if publish:
            self._table_handle = publish_blob(
                self.table_text.encode("utf-8")
            )
        self._shards: List[_Shard] = []
        self._link_shard: Dict[str, _Shard] = {}
        for index in range(n_shards):
            tables = DecisionTableCache(persist=False)
            tables.load_text(self._snapshot_text())
            self._shards.append(_Shard(index=index, tables=tables))
        for link_id in link_ids:
            shard = self._shards[self.ring.shard_for(link_id)]
            engine = AdmissionEngine(
                policy=policy, tables=shard.tables, overload=overload
            )
            engine.add_link(link_id, self.capacity, self.qos)
            shard.engines[link_id] = engine
            self._link_shard[link_id] = shard

    def _snapshot_text(self) -> str:
        """The published snapshot's bytes (or the in-process string)."""
        if self._table_handle is not None:
            return attach_blob(self._table_handle.descriptor).decode("utf-8")
        return self.table_text

    # -- topology ------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def link_ids(self) -> Tuple[str, ...]:
        return tuple(self._link_shard)

    def shard_of(self, link_id: str) -> int:
        """The shard index serving ``link_id`` (ring placement)."""
        shard = self._link_shard.get(link_id)
        if shard is None:
            raise ParameterError(
                f"unknown link {link_id!r}; serving: "
                f"{sorted(self._link_shard)}"
            )
        return shard.index

    @property
    def table_descriptor(self) -> Optional[dict]:
        """Picklable shm address of the published table snapshot."""
        if self._table_handle is None:
            return None
        return self._table_handle.descriptor

    def boundary(self, class_name: str) -> int:
        """Offline admissible N for ``class_name`` under the policy."""
        cls = self._class(class_name)
        decision = self._shards[0].tables.lookup(
            cls.model, self.capacity, self.qos, self.policy
        )
        return decision.admissible

    def _class(self, class_name: str) -> ConnectionClass:
        cls = self._classes.get(class_name)
        if cls is None:
            raise ParameterError(
                f"unknown class {class_name!r}; serving: "
                f"{sorted(self._classes)}"
            )
        return cls

    # -- the service surface -------------------------------------------------

    def admit(
        self,
        link_id: str,
        class_name: str,
        connection_id: str,
        *,
        now: Optional[float] = None,
    ) -> AdmissionDecision:
        """Route one admission request to its shard and decide it.

        ``now`` is the request's arrival time; with an overload policy
        configured it drives the per-link bounded decision queue
        (defaulting to the monotonic clock, so a live server sheds on
        real time while the open-loop driver passes workload time).
        """
        shard = self._link_shard.get(link_id)
        if shard is None:
            raise ParameterError(
                f"unknown link {link_id!r}; serving: "
                f"{sorted(self._link_shard)}"
            )
        cls = self._class(class_name)
        if now is None and self.overload is not None:
            now = time.monotonic()
        decision = shard.engines[link_id].admit(
            link_id, cls.model, connection_id, now=now
        )
        if decision.reason == "shed":
            shard.shed += 1
        elif decision.admitted:
            shard.admitted += 1
        else:
            shard.blocked += 1
        if decision.fallback:
            shard.fallbacks += 1
        return decision

    def release(self, link_id: str, connection_id: str) -> None:
        """Tear down an admitted connection on its shard."""
        shard = self._link_shard.get(link_id)
        if shard is None:
            raise ParameterError(
                f"unknown link {link_id!r}; serving: "
                f"{sorted(self._link_shard)}"
            )
        shard.engines[link_id].release(link_id, connection_id)
        shard.released += 1

    def occupancy(self, link_id: str) -> int:
        shard = self._link_shard.get(link_id)
        if shard is None:
            raise ParameterError(f"unknown link {link_id!r}")
        return shard.engines[link_id].occupancy(link_id)

    def stats(self) -> FrontendStats:
        """Aggregate decision counters across every shard."""
        return FrontendStats(
            n_shards=len(self._shards),
            n_links=len(self._link_shard),
            admitted=sum(s.admitted for s in self._shards),
            blocked=sum(s.blocked for s in self._shards),
            shed=sum(s.shed for s in self._shards),
            fallbacks=sum(s.fallbacks for s in self._shards),
            released=sum(s.released for s in self._shards),
            table_generation=self.generation,
        )

    # -- hot table swap ------------------------------------------------------

    def republish(self, table_text: str) -> int:
        """Atomically swap every shard onto a new decision-table image.

        The adaptive recompute path (:mod:`repro.adaptive.recompute`)
        builds a fresh JSONL table image off the hot path and installs
        it here:

        1. the new image is published as a *new* shared-memory segment
           (the old one keeps serving attached readers until the swap
           is complete);
        2. each shard gets a freshly loaded private cache, and every
           engine is repointed at its shard's new cache with its
           hot-path key memos invalidated — link state (admitted
           connections, occupancy, overload) is untouched, so no
           in-flight connection is dropped;
        3. only then is the old segment unlinked and the generation
           bumped.

        Requests decided before the swap used the old table, requests
        after use the new one; there is no interleaving in which a
        request sees half a table.  Returns the new generation.
        """
        new_handle: Optional[SharedBlob] = None
        if self._publish:
            new_handle = publish_blob(table_text.encode("utf-8"))
        old_handle = self._table_handle
        self.table_text = table_text
        self._table_handle = new_handle
        for shard in self._shards:
            tables = DecisionTableCache(persist=False)
            tables.load_text(self._snapshot_text())
            shard.tables = tables
            for engine in shard.engines.values():
                engine.tables = tables
                engine.invalidate_decision_caches()
        if old_handle is not None:
            old_handle.unlink()
        self.generation += 1
        return self.generation

    def close(self) -> None:
        """Unlink the published table snapshot (idempotent)."""
        handle, self._table_handle = self._table_handle, None
        if handle is not None:
            handle.unlink()

    def __enter__(self) -> "AdmissionFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"AdmissionFrontend(policy={self.policy!r}, "
            f"links={len(self._link_shard)}, shards={len(self._shards)})"
        )


class FrontendServer:
    """Newline-delimited-JSON admission service over asyncio TCP.

    One JSON object per line in, one per line out, in order —
    clients may pipeline any number of requests before reading.
    Operations (``docs/SERVICE.md`` documents the full protocol):

    ``{"op": "admit", "link": L, "class": C, "conn": ID[, "now": T]}``
        -> ``{"ok": true, "admitted": ..., "reason": ...,
        "admissible": ..., "occupancy": ..., "shard": ...,
        "fallback": ...}``
    ``{"op": "release", "link": L, "conn": ID}``
        -> ``{"ok": true}``
    ``{"op": "stats"}``
        -> ``{"ok": true, "stats": {...}}``
    ``{"op": "ping"}``
        -> ``{"ok": true, "pong": true}``

    Service errors (unknown link/class, double admit) come back as
    ``{"ok": false, "error": "..."}`` on the same line — the
    connection survives; malformed JSON likewise.  All shards live on
    the server's event loop, so per-connection handlers never race on
    engine state.
    """

    def __init__(
        self,
        frontend: AdmissionFrontend,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.frontend = frontend
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "FrontendServer":
        """Bind and start accepting; resolves ``port`` when 0."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "admit":
            decision = self.frontend.admit(
                str(request["link"]),
                str(request["class"]),
                str(request["conn"]),
                now=(
                    None if request.get("now") is None
                    else float(request["now"])
                ),
            )
            return {
                "ok": True,
                "admitted": decision.admitted,
                "reason": decision.reason,
                "admissible": decision.admissible,
                "occupancy": decision.occupancy,
                "shard": self.frontend.shard_of(decision.link_id),
                "fallback": decision.fallback,
            }
        if op == "release":
            self.frontend.release(
                str(request["link"]), str(request["conn"])
            )
            return {"ok": True}
        if op == "stats":
            return {"ok": True, "stats": self.frontend.stats().to_dict()}
        if op == "ping":
            return {"ok": True, "pong": True}
        raise ParameterError(
            f"unknown op {op!r}; choose admit, release, stats, or ping"
        )

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ParameterError(
                            "request must be a JSON object"
                        )
                    response = self._dispatch(request)
                except (ReproError, KeyError, TypeError, ValueError) as exc:
                    # A bad request must not take the connection (let
                    # alone the server) down: report and keep reading.
                    response = {"ok": False, "error": str(exc)}
                writer.write(
                    json.dumps(response, sort_keys=True).encode("utf-8")
                    + b"\n"
                )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-line; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, Exception):  # noqa: B014
                # Teardown only: the transport may already be gone
                # (client reset, loop shutdown); there is nothing
                # left to fail.
                pass

    def __repr__(self) -> str:
        return (
            f"FrontendServer({self.frontend!r}, "
            f"addr={self.host}:{self.port})"
        )
