"""The ``workload`` command-line verb.

Reachable both directly and through the experiment runner::

    python -m repro.service.cli --requests 100000 --links 4 --jobs 2
    python -m repro.experiments.runner workload --requests 100000 \\
        --links 4 --policy bahadur-rao --jobs 2

Replays a synthetic connection workload against the admission engine
and prints the measured blocking/utilization report.  The offered
load defaults to 1.2x the admissible-N boundary of the first class —
deliberately overloaded, so the admission boundary is exercised —
and can be pinned with ``--erlangs`` or ``--arrival-rate``.

``--summary-out FILE`` writes the canonical JSON summary; the same
seed produces byte-identical files for any ``--jobs`` value (CI
asserts this).  ``--table-cache FILE`` persists computed decision
tables as JSONL, warming later runs.

Fault tolerance (``docs/ROBUSTNESS.md``): ``--supervise`` restarts
crashed/hung link shards, ``--journal-dir DIR`` journals every
decision so a restarted shard recovers its exact state — with both, a
run that crashes mid-flight still emits a summary byte-identical to a
fault-free one (CI's chaos smoke asserts this).  The ``--chaos-*``
flags inject deterministic faults at ``(link, attempt, request)``
addresses to prove it.  ``--max-queue``/``--decision-rate`` bound the
admission path under overload (deterministic shedding plus a circuit
breaker falling back to the conservative peak-rate policy).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import obs
from repro.atm.qos import QoSRequirement
from repro.exceptions import ReproError
from repro.resilience.faults import ServiceFaultPlan
from repro.service.overload import OverloadPolicy
from repro.service.replay import replay_workload
from repro.service.stats import format_summary, write_summary
from repro.service.supervision import SupervisionPolicy
from repro.service.tables import SERVICE_METHODS, DecisionTableCache
from repro.service.workload import ConnectionClass, WorkloadSpec
from repro.utils.units import mbps_to_cells_per_frame

__all__ = ["CLASS_PRESETS", "build_class", "build_parser", "main"]


def _parse_chaos(values, n_fields, flag, parser):
    """Parse repeatable ``L:A:...`` chaos addresses into a dict."""
    plan = {}
    for text in values or ():
        parts = text.split(":")
        if len(parts) != n_fields:
            parser.error(
                f"{flag} expects {n_fields} colon-separated fields, "
                f"got {text!r}"
            )
        try:
            numbers = [float(p) for p in parts]
        except ValueError:
            parser.error(f"{flag}: non-numeric field in {text!r}")
        key = (int(numbers[0]), int(numbers[1]))
        plan[key] = numbers[2:]
    return plan

#: Named traffic-class presets for the CLI (built lazily — model
#: construction is not free and only requested classes should pay).
CLASS_PRESETS = {
    "video": "the paper's LRD composite Z^0.975 (H = 0.9)",
    "dar1": "DAR(1) Markov fit of Z^0.975",
    "dar3": "DAR(3) Markov fit of Z^0.975",
    "conference": "small SRD videoconference source (AR(1))",
}


def build_class(spec: str) -> ConnectionClass:
    """Parse one ``--class name[:weight]`` preset occurrence.

    Shared with the ``obs sweep`` verb, which offers the same presets.
    """
    name, _, weight_text = spec.partition(":")
    if name not in CLASS_PRESETS:
        raise argparse.ArgumentTypeError(
            f"unknown class {name!r}; choose from "
            f"{', '.join(sorted(CLASS_PRESETS))}"
        )
    weight = 1.0
    if weight_text:
        try:
            weight = float(weight_text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"class weight must be a number, got {weight_text!r}"
            ) from None
    from repro.models import AR1Model, make_s, make_z

    model = {
        "video": lambda: make_z(0.975),
        "dar1": lambda: make_s(1, 0.975),
        "dar3": lambda: make_s(3, 0.975),
        "conference": lambda: AR1Model(0.6, 100.0, 400.0),
    }[name]()
    return ConnectionClass(name=name, model=model, weight=weight)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-workload",
        description=(
            "Replay a synthetic connection workload through the online "
            "admission-control engine"
        ),
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=10_000,
        metavar="N",
        help="connection requests per link (default 10000)",
    )
    parser.add_argument(
        "--links",
        type=int,
        default=1,
        metavar="L",
        help="independent links to replay (default 1)",
    )
    parser.add_argument(
        "--policy",
        choices=SERVICE_METHODS,
        default="bahadur-rao",
        help="admission policy (default bahadur-rao)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard links across N worker processes; the summary is "
        "bit-identical to --jobs 1 (default 1)",
    )
    parser.add_argument(
        "--pool",
        choices=("warm", "spawn"),
        default=None,
        help="worker-pool discipline for --jobs > 1: 'warm' (default; "
        "persistent workers reused across replays) or 'spawn' (fresh "
        "processes per replay)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=20260806,
        metavar="S",
        help="workload seed; per-link streams are SeedSequence children",
    )
    parser.add_argument(
        "--class",
        dest="classes",
        action="append",
        type=build_class,
        metavar="NAME[:WEIGHT]",
        help="offered class (repeatable); presets: "
        + ", ".join(f"{k} = {v}" for k, v in sorted(CLASS_PRESETS.items()))
        + " (default: video)",
    )
    parser.add_argument(
        "--capacity-mbps",
        type=float,
        default=155.52,
        metavar="MBPS",
        help="link rate in Mbit/s (default 155.52, OC-3)",
    )
    parser.add_argument(
        "--delay-ms",
        type=float,
        default=20.0,
        metavar="MS",
        help="per-node QoS delay budget (default 20 msec)",
    )
    parser.add_argument(
        "--clr",
        type=float,
        default=1e-6,
        metavar="P",
        help="QoS cell loss rate target (default 1e-6)",
    )
    parser.add_argument(
        "--erlangs",
        type=float,
        default=None,
        metavar="A",
        help="offered load in Erlangs per link (default: 1.2x the "
        "admissible-N boundary, i.e. deliberately overloaded)",
    )
    parser.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="connection arrivals/second per link (overrides --erlangs)",
    )
    parser.add_argument(
        "--holding-mean",
        type=float,
        default=90.0,
        metavar="SECONDS",
        help="mean connection holding time (default 90 s)",
    )
    parser.add_argument(
        "--heavy-tailed",
        action="store_true",
        help="draw holding times from the heavy-tailed "
        "(exponential-body/Pareto-tail) session law instead of "
        "exponential",
    )
    parser.add_argument(
        "--tail-gamma",
        type=float,
        default=1.5,
        metavar="G",
        help="tail exponent for --heavy-tailed, in (1, 2) (default 1.5)",
    )
    parser.add_argument(
        "--table-cache",
        metavar="FILE",
        default=None,
        help="persist decision tables as JSONL at FILE (warmed before "
        "the replay; workers load it read-only)",
    )
    parser.add_argument(
        "--summary-out",
        metavar="FILE",
        default=None,
        help="write the canonical JSON summary to FILE (byte-identical "
        "across --jobs values)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="collect telemetry and print the span/metrics summary",
    )
    fault = parser.add_argument_group(
        "fault tolerance (docs/ROBUSTNESS.md)"
    )
    fault.add_argument(
        "--journal-dir",
        metavar="DIR",
        default=None,
        help="journal every decision under DIR (one checksummed JSONL "
        "per link attempt); restarted shards recover from it exactly",
    )
    fault.add_argument(
        "--snapshot-every",
        type=int,
        default=2000,
        metavar="N",
        help="journal a full state snapshot every N events "
        "(default 2000); bounds recovery replay length",
    )
    fault.add_argument(
        "--supervise",
        action="store_true",
        help="restart crashed/hung link shards instead of failing fast",
    )
    fault.add_argument(
        "--max-restarts",
        type=int,
        default=2,
        metavar="N",
        help="extra attempts per shard under --supervise (default 2)",
    )
    fault.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="declare a shard hung after SECONDS wall-clock and restart "
        "it (process-pool backends only; default: no hang detection)",
    )
    fault.add_argument(
        "--heartbeat",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="supervisor poll interval while waiting on shard results "
        "(default 0.5 s)",
    )
    fault.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="base restart backoff, doubled per attempt (default 0: "
        "restart immediately — journal recovery is deterministic)",
    )
    overload = parser.add_argument_group("overload policy")
    overload.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="DEPTH",
        help="bound the admission queue at DEPTH outstanding decisions; "
        "arrivals past the bound are shed deterministically",
    )
    overload.add_argument(
        "--decision-rate",
        type=float,
        default=None,
        metavar="PER_SEC",
        help="modelled decision service rate (decisions/second on the "
        "workload clock); required for --max-queue to ever shed",
    )
    overload.add_argument(
        "--breaker-cooldown",
        type=int,
        default=64,
        metavar="N",
        help="requests the circuit breaker stays open before probing "
        "the primary policy again (default 64)",
    )
    chaos = parser.add_argument_group(
        "chaos injection (deterministic; requires --supervise)"
    )
    chaos.add_argument(
        "--chaos-crash",
        action="append",
        metavar="L:A:R",
        help="crash link L's attempt A before request R (repeatable)",
    )
    chaos.add_argument(
        "--chaos-hang",
        action="append",
        metavar="L:A:R:S",
        help="hang link L's attempt A for S seconds at request R",
    )
    chaos.add_argument(
        "--chaos-torn-write",
        action="append",
        metavar="L:A:E",
        help="tear the journal line for event E on link L attempt A "
        "(half-written, no newline), then crash",
    )
    chaos.add_argument(
        "--chaos-table-fault",
        action="append",
        metavar="L:A:R",
        help="fail the primary decision-table lookup for request R on "
        "link L attempt A (drives the breaker/fallback path)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.requests < 1:
        parser.error(f"--requests must be >= 1, got {args.requests}")
    if args.links < 1:
        parser.error(f"--links must be >= 1, got {args.links}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    crash = _parse_chaos(args.chaos_crash, 3, "--chaos-crash", parser)
    hang = _parse_chaos(args.chaos_hang, 4, "--chaos-hang", parser)
    torn = _parse_chaos(
        args.chaos_torn_write, 3, "--chaos-torn-write", parser
    )
    table_fault_raw = _parse_chaos(
        args.chaos_table_fault, 3, "--chaos-table-fault", parser
    )
    any_chaos = crash or hang or torn or table_fault_raw
    if any_chaos and not args.supervise:
        parser.error("--chaos-* flags require --supervise")
    if (crash or torn) and args.journal_dir is None:
        parser.error(
            "--chaos-crash/--chaos-torn-write need --journal-dir so the "
            "restarted shard can recover"
        )
    if hang and args.shard_timeout is None:
        parser.error("--chaos-hang requires --shard-timeout")
    faults = None
    if any_chaos:
        # Repeated --chaos-table-fault flags for one (link, attempt)
        # merge into one request set.
        table_faults: dict = {}
        for raw in args.chaos_table_fault or ():
            link, attempt, request = (int(float(p)) for p in raw.split(":"))
            table_faults.setdefault((link, attempt), set()).add(request)
        faults = ServiceFaultPlan(
            crash_shard_at={k: int(v[0]) for k, v in crash.items()},
            hang_shard_at={k: (int(v[0]), v[1]) for k, v in hang.items()},
            torn_write_at={k: int(v[0]) for k, v in torn.items()},
            table_corrupt_at=table_faults,
        )

    supervision = None
    if args.supervise:
        supervision = SupervisionPolicy(
            max_restarts=args.max_restarts,
            shard_timeout_seconds=args.shard_timeout,
            heartbeat_seconds=args.heartbeat,
            backoff_seconds=args.backoff,
        )
    overload = None
    if args.max_queue is not None:
        if args.decision_rate is not None and args.decision_rate <= 0:
            parser.error("--decision-rate must be > 0")
        overload = OverloadPolicy(
            max_queue_depth=args.max_queue,
            decision_seconds=(
                1.0 / args.decision_rate
                if args.decision_rate is not None
                else 0.0
            ),
            breaker_cooldown=args.breaker_cooldown,
        )

    classes = args.classes or [build_class("video")]
    capacity = mbps_to_cells_per_frame(args.capacity_mbps)
    qos = QoSRequirement(
        max_delay_seconds=args.delay_ms / 1000.0, max_clr=args.clr
    )

    if args.trace:
        obs.enable()
        obs.reset()

    # Warm the decision table for the first class once in the parent:
    # it pins the boundary the default offered load is derived from,
    # and (with --table-cache) seeds the file every link then loads.
    tables = DecisionTableCache(path=args.table_cache)
    boundary = tables.lookup(classes[0].model, capacity, qos, args.policy)

    if args.arrival_rate is not None:
        arrival_rate = args.arrival_rate
    else:
        erlangs = (
            args.erlangs
            if args.erlangs is not None
            else 1.2 * max(boundary.admissible, 1)
        )
        arrival_rate = erlangs / args.holding_mean

    try:
        spec = WorkloadSpec(
            n_requests=args.requests,
            arrival_rate=arrival_rate,
            mean_holding_time=args.holding_mean,
            holding="heavy-tailed" if args.heavy_tailed else "exponential",
            tail_gamma=args.tail_gamma,
        )
        summary = replay_workload(
            spec,
            classes,
            n_links=args.links,
            capacity=capacity,
            qos=qos,
            policy=args.policy,
            rng=args.seed,
            jobs=args.jobs,
            pool=args.pool,
            table_path=args.table_cache,
            journal_dir=args.journal_dir,
            snapshot_every=args.snapshot_every,
            supervision=supervision,
            overload=overload,
            faults=faults,
        )
    except ReproError as exc:
        parser.error(str(exc))

    print(format_summary(summary))
    if args.trace:
        print()
        print(obs.format_summary())
    if args.summary_out is not None:
        path = write_summary(args.summary_out, summary)
        print(f"[wrote {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
