"""Reproducible synthetic connection workloads for the CAC service.

A connection-level workload is the classical teletraffic object the
replay driver streams through the admission engine: connection
requests arrive in a Poisson stream of rate ``lambda`` and hold their
admitted capacity for i.i.d. holding times of mean ``tau`` — offering
``a = lambda * tau`` Erlangs against the link's admissible-N boundary.

Holding times come in two laws:

* ``exponential`` — the textbook M/M/N(0) assumption under which the
  Erlang-B picture applies;
* ``heavy-tailed`` — the paper-consistent alternative: durations drawn
  from :class:`~repro.models.heavy_tail.HeavyTailedDuration` (the
  exponential-body / Pareto-tail law of the fractal ON/OFF sources,
  ``1 < gamma < 2``), whose infinite variance makes connection-level
  occupancy itself long-range dependent.  Blocking probability is
  famously insensitive to the holding-time law (only the mean enters
  the offered load), and the replay driver lets that classical
  insensitivity be measured directly against LRD session durations.

Determinism follows the library's ``SeedSequence`` conventions: all
draws come from one caller-supplied generator in a fixed order
(inter-arrivals, then holding times, then class labels), so the same
generator state always produces the identical workload — the property
the replay driver's serial/parallel bit-identity contract rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.models.base import TrafficModel
from repro.models.heavy_tail import HeavyTailedDuration
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_positive,
)

__all__ = [
    "ConnectionClass",
    "HOLDING_LAWS",
    "Workload",
    "WorkloadSpec",
    "generate_workload",
    "holding_time_distribution",
]

#: Supported holding-time laws.
HOLDING_LAWS: Tuple[str, ...] = ("exponential", "heavy-tailed")


@dataclass(frozen=True)
class ConnectionClass:
    """One traffic class in the offered mix.

    ``weight`` is the relative arrival share of this class (weights
    are normalized over the mix, so any positive scale works).
    """

    name: str
    model: TrafficModel
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("class name must be non-empty")
        check_positive(self.weight, "weight")


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic connection workload (per link).

    ``arrival_rate`` is in connections/second, ``mean_holding_time``
    in seconds; their product is the offered load in Erlangs.
    """

    n_requests: int
    arrival_rate: float
    mean_holding_time: float
    holding: str = "exponential"
    #: Tail exponent gamma in (1, 2) for the heavy-tailed law
    #: (infinite variance; smaller gamma = heavier session tail).
    tail_gamma: float = 1.5

    def __post_init__(self) -> None:
        check_integer(self.n_requests, "n_requests", minimum=1)
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.mean_holding_time, "mean_holding_time")
        if self.holding not in HOLDING_LAWS:
            raise ParameterError(
                f"unknown holding-time law {self.holding!r}; choose from "
                f"{', '.join(HOLDING_LAWS)}"
            )
        check_in_range(self.tail_gamma, "tail_gamma", 1.0, 2.0)

    @property
    def offered_erlangs(self) -> float:
        """Offered load ``a = lambda * tau`` in Erlangs (connections)."""
        return self.arrival_rate * self.mean_holding_time


@dataclass(frozen=True)
class Workload:
    """A realized request stream: when, how long, and which class."""

    arrival_times: np.ndarray
    holding_times: np.ndarray
    class_indices: np.ndarray

    @property
    def n_requests(self) -> int:
        return int(self.arrival_times.shape[0])

    @property
    def horizon_seconds(self) -> float:
        """Time of the last arrival (the replay integration horizon).

        An empty stream has a zero-length horizon by contract — an
        idle link must report 0.0, not raise on the missing last
        element.
        """
        if self.arrival_times.shape[0] == 0:
            return 0.0
        return float(self.arrival_times[-1])


def holding_time_distribution(spec: WorkloadSpec) -> HeavyTailedDuration:
    """The heavy-tailed law of ``spec``, knee-scaled to its mean.

    ``HeavyTailedDuration`` is parameterized by (gamma, knee); the mean
    is linear in the knee, so scaling the unit-knee mean hits
    ``spec.mean_holding_time`` exactly.
    """
    unit_mean = HeavyTailedDuration(spec.tail_gamma, 1.0).mean
    return HeavyTailedDuration(
        spec.tail_gamma, spec.mean_holding_time / unit_mean
    )


def generate_workload(
    spec: WorkloadSpec,
    classes: Sequence[ConnectionClass],
    rng: RngLike = None,
) -> Workload:
    """Draw one workload realization from ``rng``.

    Draw order is fixed (inter-arrivals, holding times, class labels)
    so a given generator state maps to exactly one workload.
    """
    if not classes:
        raise ParameterError("workload needs at least one ConnectionClass")
    names = [c.name for c in classes]
    if len(set(names)) != len(names):
        raise ParameterError(f"class names must be unique, got {names}")
    generator = as_generator(rng)
    n = spec.n_requests

    inter_arrivals = generator.exponential(
        1.0 / spec.arrival_rate, size=n
    )
    arrival_times = np.cumsum(inter_arrivals)

    if spec.holding == "exponential":
        holding_times = generator.exponential(
            spec.mean_holding_time, size=n
        )
    else:
        law = holding_time_distribution(spec)
        holding_times = law.ppf(generator.random(size=n))

    if len(classes) == 1:
        class_indices = np.zeros(n, dtype=np.int64)
    else:
        weights = np.asarray([c.weight for c in classes], dtype=float)
        boundaries = np.cumsum(weights / weights.sum())
        uniforms = generator.random(size=n)
        class_indices = np.minimum(
            np.searchsorted(boundaries, uniforms, side="right"),
            len(classes) - 1,
        ).astype(np.int64)

    return Workload(
        arrival_times=arrival_times,
        holding_times=holding_times,
        class_indices=class_indices,
    )
