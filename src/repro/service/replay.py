"""Workload replay: millions of admission requests through the engine.

The driver closes the loop from the paper's Table-1-style capacity
numbers to a *served* workload: it streams a synthetic connection
workload (:mod:`repro.service.workload`) through an
:class:`~repro.service.engine.AdmissionEngine` per link and measures
what the offline tables only predict — blocking probability,
time-averaged utilization, and whether the online boundary matches the
offline admissible N.

Scale comes from two places:

* **decision-table caching** — each link performs one offline
  inversion per distinct class and serves every further request from
  the LRU table, so a million-request replay costs a handful of
  Bahadur-Rao inversions (`ReplaySummary.cache_hit_rate` reports the
  measured ratio);
* **link sharding** — links are statistically independent (their RNG
  streams are ``SeedSequence``-spawned children of one seed), so the
  replay fans them out across the :mod:`repro.parallel` backends.  As
  everywhere in this library, parallel runs are **bit-identical** to
  serial ones: per-link statistics are computed by identical code on
  identical generator states and pooled in link-index order, so the
  summary — including every float — does not depend on ``jobs``.

Every replayed decision is also checked against the offline boundary
in place: a request admitted at occupancy >= N or blocked below N
would increment ``boundary_violations``, which a healthy replay
reports as zero.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.atm.qos import QoSRequirement
from repro.exceptions import ParameterError
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.obs.spans import span
from repro.parallel.backends import Backend, resolve_backend
from repro.parallel.worker import (
    WorkerPayload,
    execute_payload,
    merge_result_telemetry,
)
from repro.service.engine import AdmissionEngine
from repro.service.tables import (
    EFFECTIVE_BANDWIDTH_METHOD,
    DecisionTableCache,
)
from repro.service.workload import (
    ConnectionClass,
    WorkloadSpec,
    generate_workload,
)
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "LinkStats",
    "ReplaySummary",
    "replay_link",
    "replay_workload",
]


@dataclass(frozen=True)
class LinkStats:
    """Measured outcome of one link's replay."""

    link_index: int
    n_requests: int
    admitted: int
    blocked: int
    peak_occupancy: int
    #: Offline admissible N for the first class (the boundary the
    #: online decisions were checked against).
    admissible: int
    #: Decisions inconsistent with the offline boundary (must be 0).
    boundary_violations: int
    #: Integral of carried mean load over time (cells/frame x seconds).
    carried_load_seconds: float
    elapsed_seconds: float
    cache_hits: int
    cache_misses: int

    @property
    def blocking_probability(self) -> float:
        return self.blocked / self.n_requests if self.n_requests else 0.0

    def utilization(self, capacity: float) -> float:
        """Time-averaged carried load as a fraction of ``capacity``."""
        denominator = capacity * self.elapsed_seconds
        return self.carried_load_seconds / denominator if denominator else 0.0

    # -- flat transport through WorkerResult arrays --------------------------

    _FIELDS = (
        "n_requests",
        "admitted",
        "blocked",
        "peak_occupancy",
        "admissible",
        "boundary_violations",
        "carried_load_seconds",
        "elapsed_seconds",
        "cache_hits",
        "cache_misses",
    )

    def as_array(self) -> np.ndarray:
        """Encode as the float vector a worker ships back."""
        return np.asarray(
            [float(getattr(self, name)) for name in self._FIELDS]
        )

    @classmethod
    def from_array(cls, link_index: int, values: np.ndarray) -> "LinkStats":
        values = np.asarray(values, dtype=float)
        if values.shape != (len(cls._FIELDS),):
            raise ParameterError(
                f"link-stats vector must have shape ({len(cls._FIELDS)},), "
                f"got {values.shape}"
            )
        data = dict(zip(cls._FIELDS, values))
        return cls(
            link_index=link_index,
            n_requests=int(data["n_requests"]),
            admitted=int(data["admitted"]),
            blocked=int(data["blocked"]),
            peak_occupancy=int(data["peak_occupancy"]),
            admissible=int(data["admissible"]),
            boundary_violations=int(data["boundary_violations"]),
            carried_load_seconds=float(data["carried_load_seconds"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
            cache_hits=int(data["cache_hits"]),
            cache_misses=int(data["cache_misses"]),
        )


@dataclass(frozen=True)
class ReplaySummary:
    """Pooled outcome of a multi-link replay (links in index order)."""

    policy: str
    capacity: float
    n_links: int
    n_requests: int
    admitted: int
    blocked: int
    blocking_probability: float
    #: Mean over links of the time-averaged utilization.
    utilization: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    boundary_violations: int
    offered_erlangs: float
    links: Tuple[LinkStats, ...]


def replay_link(
    spec: WorkloadSpec,
    classes: Sequence[ConnectionClass],
    *,
    capacity: float,
    qos: QoSRequirement,
    policy: str,
    rng: RngLike,
    link_index: int = 0,
    table_path=None,
) -> LinkStats:
    """Replay one link's workload through a fresh engine.

    Event-driven: arrivals in time order, departures drained from a
    heap before each arrival, the carried-load integral updated at
    every state change.  The engine and its decision-table cache are
    private to the link, so a link's statistics do not depend on what
    other links (or processes) did — the bit-identity contract.
    """
    tables = (
        DecisionTableCache(path=table_path, persist=False)
        if table_path is not None
        else DecisionTableCache()
    )
    engine = AdmissionEngine(policy=policy, tables=tables)
    link_id = f"link-{link_index}"
    link = engine.add_link(link_id, capacity, qos)
    workload = generate_workload(spec, classes, rng)

    # The boundary the replay is checked against: admissible N of the
    # first class (deterministically the first table miss).
    boundary = tables.lookup(classes[0].model, capacity, qos, policy)
    count_policy = policy != EFFECTIVE_BANDWIDTH_METHOD

    arrivals = workload.arrival_times
    holdings = workload.holding_times
    labels = workload.class_indices
    models = [c.model for c in classes]

    departures: List[Tuple[float, str]] = []
    admitted = blocked = 0
    peak_occupancy = 0
    boundary_violations = 0
    carried_load_seconds = 0.0
    last_event_time = 0.0

    admit = engine.admit
    release = engine.release
    heappush = heapq.heappush
    heappop = heapq.heappop

    with span(
        "service.replay.link",
        link=link_index,
        requests=workload.n_requests,
        policy=policy,
    ):
        for i in range(workload.n_requests):
            now = float(arrivals[i])
            while departures and departures[0][0] <= now:
                departed_at, connection_id = heappop(departures)
                carried_load_seconds += link.admitted_mean_load * (
                    departed_at - last_event_time
                )
                last_event_time = departed_at
                release(link_id, connection_id)
            carried_load_seconds += link.admitted_mean_load * (
                now - last_event_time
            )
            last_event_time = now

            occupancy_before = link.occupancy
            decision = admit(link_id, models[labels[i]], f"c{i}")
            if decision.admitted:
                admitted += 1
                if decision.occupancy > peak_occupancy:
                    peak_occupancy = decision.occupancy
                heappush(departures, (now + float(holdings[i]), f"c{i}"))
            else:
                blocked += 1
            if count_policy and decision.admitted != (
                occupancy_before < decision.admissible
            ):
                boundary_violations += 1

    if _spans._ENABLED:
        _metrics.add("service.requests_replayed", workload.n_requests)
        # add(0) still registers the instrument, so serial and
        # parallel snapshots list the same counters.
        _metrics.add("service.boundary_violations", boundary_violations)

    return LinkStats(
        link_index=link_index,
        n_requests=workload.n_requests,
        admitted=admitted,
        blocked=blocked,
        peak_occupancy=peak_occupancy,
        admissible=boundary.admissible,
        boundary_violations=boundary_violations,
        carried_load_seconds=carried_load_seconds,
        elapsed_seconds=workload.horizon_seconds,
        cache_hits=tables.hits,
        cache_misses=tables.misses,
    )


@dataclass(frozen=True, eq=False)
class _LinkReplayTask:
    """Picklable body of one link's replay, for any backend."""

    spec: WorkloadSpec
    classes: Tuple[ConnectionClass, ...]
    capacity: float
    qos: QoSRequirement
    policy: str
    table_path: Optional[str] = None

    def __call__(self, index: int, generator: np.random.Generator):
        stats = replay_link(
            self.spec,
            self.classes,
            capacity=self.capacity,
            qos=self.qos,
            policy=self.policy,
            rng=generator,
            link_index=index,
            table_path=self.table_path,
        )
        return stats.as_array(), float(stats.n_requests)


def _pool_links(
    policy: str,
    capacity: float,
    spec: WorkloadSpec,
    links: Sequence[LinkStats],
) -> ReplaySummary:
    """Aggregate per-link stats in index order (float order fixed)."""
    n_requests = sum(s.n_requests for s in links)
    admitted = sum(s.admitted for s in links)
    blocked = sum(s.blocked for s in links)
    utilization = 0.0
    for stats in links:
        utilization += stats.utilization(capacity)
    utilization /= len(links)
    cache_hits = sum(s.cache_hits for s in links)
    cache_misses = sum(s.cache_misses for s in links)
    cache_total = cache_hits + cache_misses
    return ReplaySummary(
        policy=policy,
        capacity=float(capacity),
        n_links=len(links),
        n_requests=n_requests,
        admitted=admitted,
        blocked=blocked,
        blocking_probability=blocked / n_requests if n_requests else 0.0,
        utilization=utilization,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        cache_hit_rate=cache_hits / cache_total if cache_total else 0.0,
        boundary_violations=sum(s.boundary_violations for s in links),
        offered_erlangs=spec.offered_erlangs,
        links=tuple(links),
    )


def replay_workload(
    spec: WorkloadSpec,
    classes: Sequence[ConnectionClass],
    *,
    n_links: int = 1,
    capacity: float,
    qos: Optional[QoSRequirement] = None,
    policy: str = "bahadur-rao",
    rng: RngLike = None,
    backend: Optional[Backend] = None,
    jobs: Optional[int] = None,
    table_path=None,
) -> ReplaySummary:
    """Replay ``spec`` on every link and pool the measured statistics.

    Each of the ``n_links`` independent links runs the same workload
    specification on its own ``SeedSequence``-spawned stream.  With
    ``jobs=N`` (or an explicit ``backend=``) links fan out across
    worker processes; the summary is bit-identical to a serial run on
    the same seed.  ``table_path`` points every link at a shared
    persisted decision table (loaded read-only).
    """
    n_links = check_integer(n_links, "n_links", minimum=1)
    check_positive(capacity, "capacity")
    qos = qos if qos is not None else QoSRequirement()
    exec_backend = resolve_backend(backend, jobs)
    task = _LinkReplayTask(
        spec=spec,
        classes=tuple(classes),
        capacity=float(capacity),
        qos=qos,
        policy=policy,
        table_path=None if table_path is None else str(table_path),
    )
    telemetry = _spans.is_enabled()
    generators = spawn_generators(rng, n_links)
    payloads = [
        WorkerPayload(
            index=i,
            attempt=0,
            task=task,
            generator=generators[i],
            label=f"workload-link-{i}",
            telemetry=telemetry,
            health_check=True,
        )
        for i in range(n_links)
    ]
    results: List = [None] * n_links
    with span(
        "service.replay",
        links=n_links,
        requests=spec.n_requests * n_links,
        policy=policy,
        jobs=1 if exec_backend is None else exec_backend.jobs,
    ):
        if exec_backend is None:
            for payload in payloads:
                result = execute_payload(payload)
                if result.failed:
                    raise result.error
                results[result.index] = result
        else:
            with exec_backend.session() as session:
                for payload in payloads:
                    session.submit(payload)
                while session.pending:
                    result = session.next_completed()
                    if result.failed:
                        raise result.error
                    results[result.index] = result
            # Telemetry merges in link-index order, not completion
            # order: sketch/counter snapshots (and their canonical
            # JSON) must not depend on which worker finished first.
            for result in results:
                merge_result_telemetry(result)
    links = [
        LinkStats.from_array(i, results[i].lost) for i in range(n_links)
    ]
    return _pool_links(policy, capacity, spec, links)
