"""Workload replay: millions of admission requests through the engine.

The driver closes the loop from the paper's Table-1-style capacity
numbers to a *served* workload: it streams a synthetic connection
workload (:mod:`repro.service.workload`) through an
:class:`~repro.service.engine.AdmissionEngine` per link and measures
what the offline tables only predict — blocking probability,
time-averaged utilization, and whether the online boundary matches the
offline admissible N.

Scale comes from two places:

* **decision-table caching** — each link performs one offline
  inversion per distinct class and serves every further request from
  the LRU table, so a million-request replay costs a handful of
  Bahadur-Rao inversions (`ReplaySummary.cache_hit_rate` reports the
  measured ratio);
* **link sharding** — links are statistically independent (their RNG
  streams are ``SeedSequence``-spawned children of one seed), so the
  replay fans them out across the :mod:`repro.parallel` backends.  As
  everywhere in this library, parallel runs are **bit-identical** to
  serial ones: per-link statistics are computed by identical code on
  identical generator states and pooled in link-index order, so the
  summary — including every float — does not depend on ``jobs``.

Fault tolerance extends that contract to crashes.  With
``journal_dir=`` each link shard journals every decision
(:mod:`repro.service.journal`) and snapshots its full state
periodically; with ``supervision=`` a crashed or hung shard is
restarted (:mod:`repro.service.supervision`) and the fresh attempt
recovers from the journal — restoring accumulators, the departure
heap, table counters, and overload state *exactly*, then re-applying
the post-snapshot events — so a recovered replay's summary is
**byte-identical** to one that never crashed.  ``overload=`` bounds
the admission path past saturation (deterministic shedding + breaker
fallback, :mod:`repro.service.overload`), and ``faults=`` accepts a
:class:`~repro.resilience.faults.ServiceFaultPlan` so every recovery
path is deterministically testable.

Every replayed decision is also checked against the offline boundary
in place: a request admitted at occupancy >= N or blocked below N
would increment ``boundary_violations``, which a healthy replay
reports as zero (shed and fallback decisions are excluded — they are
decided against the overload policy, not the primary boundary).
"""

from __future__ import annotations

import hashlib
import heapq
import json
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.atm.qos import QoSRequirement
from repro.exceptions import JournalError, ParameterError
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.obs.spans import span
from repro.parallel.backends import (
    Backend,
    ProcessPoolBackend,
    resolve_backend,
)
from repro.parallel.shm import attach_blob, publish_blob
from repro.parallel.worker import (
    WorkerPayload,
    execute_payload,
    merge_result_telemetry,
)
from repro.resilience.faults import (
    NO_CUES,
    FaultyDecisionTables,
    InjectedCrash,
    ServiceFaultPlan,
)
from repro.service.engine import REASON_SHED, AdmissionEngine
from repro.service.journal import (
    LinkJournal,
    find_recovery,
    journal_path,
)
from repro.service.overload import OverloadPolicy
from repro.service.supervision import ShardSupervisor, SupervisionPolicy
from repro.service.tables import (
    EFFECTIVE_BANDWIDTH_METHOD,
    DecisionTableCache,
    model_fingerprint,
)
from repro.service.workload import (
    ConnectionClass,
    WorkloadSpec,
    generate_workload,
)
from repro.utils.replication_context import current_attempt
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "LinkStats",
    "ReplaySummary",
    "replay_link",
    "replay_workload",
]


@dataclass(frozen=True)
class LinkStats:
    """Measured outcome of one link's replay."""

    link_index: int
    n_requests: int
    admitted: int
    blocked: int
    #: Requests dropped by the overload policy before any table work.
    shed: int
    #: Decisions served by the breaker's conservative fallback policy.
    fallbacks: int
    peak_occupancy: int
    #: Offline admissible N for the first class (the boundary the
    #: online decisions were checked against).
    admissible: int
    #: Decisions inconsistent with the offline boundary (must be 0).
    boundary_violations: int
    #: Integral of carried mean load over time (cells/frame x seconds).
    carried_load_seconds: float
    elapsed_seconds: float
    cache_hits: int
    cache_misses: int

    @property
    def blocking_probability(self) -> float:
        return self.blocked / self.n_requests if self.n_requests else 0.0

    @property
    def shed_ratio(self) -> float:
        return self.shed / self.n_requests if self.n_requests else 0.0

    def utilization(self, capacity: float) -> float:
        """Time-averaged carried load as a fraction of ``capacity``."""
        denominator = capacity * self.elapsed_seconds
        return self.carried_load_seconds / denominator if denominator else 0.0

    # -- flat transport through WorkerResult arrays --------------------------

    _FIELDS = (
        "n_requests",
        "admitted",
        "blocked",
        "shed",
        "fallbacks",
        "peak_occupancy",
        "admissible",
        "boundary_violations",
        "carried_load_seconds",
        "elapsed_seconds",
        "cache_hits",
        "cache_misses",
    )

    def as_array(self) -> np.ndarray:
        """Encode as the float vector a worker ships back."""
        return np.asarray(
            [float(getattr(self, name)) for name in self._FIELDS]
        )

    @classmethod
    def from_array(cls, link_index: int, values: np.ndarray) -> "LinkStats":
        values = np.asarray(values, dtype=float)
        if values.shape != (len(cls._FIELDS),):
            raise ParameterError(
                f"link-stats vector must have shape ({len(cls._FIELDS)},), "
                f"got {values.shape}"
            )
        data = dict(zip(cls._FIELDS, values))
        return cls(
            link_index=link_index,
            n_requests=int(data["n_requests"]),
            admitted=int(data["admitted"]),
            blocked=int(data["blocked"]),
            shed=int(data["shed"]),
            fallbacks=int(data["fallbacks"]),
            peak_occupancy=int(data["peak_occupancy"]),
            admissible=int(data["admissible"]),
            boundary_violations=int(data["boundary_violations"]),
            carried_load_seconds=float(data["carried_load_seconds"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
            cache_hits=int(data["cache_hits"]),
            cache_misses=int(data["cache_misses"]),
        )


@dataclass(frozen=True)
class ReplaySummary:
    """Pooled outcome of a multi-link replay (links in index order)."""

    policy: str
    capacity: float
    n_links: int
    n_requests: int
    admitted: int
    blocked: int
    shed: int
    fallbacks: int
    blocking_probability: float
    #: Mean over links of the time-averaged utilization.
    utilization: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    boundary_violations: int
    offered_erlangs: float
    links: Tuple[LinkStats, ...]

    @property
    def shed_ratio(self) -> float:
        return self.shed / self.n_requests if self.n_requests else 0.0


def _journal_fingerprint(
    spec: WorkloadSpec,
    classes: Sequence[ConnectionClass],
    *,
    capacity: float,
    qos: QoSRequirement,
    policy: str,
    link_index: int,
) -> str:
    """A stable identity for one shard's replay configuration.

    Guards recovery against replaying a journal written for a
    different workload, class mix, capacity, QoS, policy, or link.
    (The RNG seed is embedded in the generator and not independently
    hashable; the workload spec carries everything else that shapes
    the event stream.)
    """
    payload = json.dumps(
        {
            "n_requests": spec.n_requests,
            "arrival_rate": float(spec.arrival_rate).hex(),
            "mean_holding_time": float(spec.mean_holding_time).hex(),
            "holding": spec.holding,
            "tail_gamma": float(spec.tail_gamma).hex(),
            "classes": [
                [c.name, model_fingerprint(c.model), float(c.weight).hex()]
                for c in classes
            ],
            "capacity": float(capacity).hex(),
            "max_delay_seconds": float(qos.max_delay_seconds).hex(),
            "max_clr": float(qos.max_clr).hex(),
            "policy": policy,
            "link_index": int(link_index),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class _LinkReplay:
    """One link's mutable replay state, shared by live and re-applied
    event processing so both run byte-identical code."""

    def __init__(self):
        self.departures: List[Tuple[float, str]] = []
        self.admitted = 0
        self.blocked = 0
        self.shed = 0
        self.fallbacks = 0
        self.peak_occupancy = 0
        self.boundary_violations = 0
        self.carried_load_seconds = 0.0
        self.last_event_time = 0.0

    def capture(self, seq: int, engine, link_id: str, tables) -> dict:
        """The full shard state after event ``seq``, exactly.

        Floats as hex round-trips; the departure list in its live heap
        order (heap order is deterministic, so restoring the raw list
        reproduces identical pop sequences); accumulators as stored —
        a recovered attempt must never re-sum them.
        """
        return {
            "seq": int(seq),
            "admitted": self.admitted,
            "blocked": self.blocked,
            "shed": self.shed,
            "fallbacks": self.fallbacks,
            "peak_occupancy": self.peak_occupancy,
            "boundary_violations": self.boundary_violations,
            "carried_load_seconds": self.carried_load_seconds.hex(),
            "last_event_time": self.last_event_time.hex(),
            "departures": [
                [t.hex(), connection_id]
                for t, connection_id in self.departures
            ],
            "link": engine.export_link_state(link_id),
            "tables": tables.snapshot_state(),
            "overload": (
                engine.overload.state_dict()
                if engine.overload is not None
                else None
            ),
        }

    def restore(self, state: dict, engine, link_id: str, tables) -> None:
        """Restore :meth:`capture` output exactly."""
        self.admitted = int(state["admitted"])
        self.blocked = int(state["blocked"])
        self.shed = int(state["shed"])
        self.fallbacks = int(state["fallbacks"])
        self.peak_occupancy = int(state["peak_occupancy"])
        self.boundary_violations = int(state["boundary_violations"])
        self.carried_load_seconds = float.fromhex(
            state["carried_load_seconds"]
        )
        self.last_event_time = float.fromhex(state["last_event_time"])
        self.departures = [
            (float.fromhex(t), connection_id)
            for t, connection_id in state["departures"]
        ]
        engine.restore_link_state(link_id, state["link"])
        tables.restore_state(state["tables"])
        if state.get("overload") is not None and engine.overload is not None:
            engine.overload.restore_state(state["overload"])


def replay_link(
    spec: WorkloadSpec,
    classes: Sequence[ConnectionClass],
    *,
    capacity: float,
    qos: QoSRequirement,
    policy: str,
    rng: RngLike,
    link_index: int = 0,
    table_path=None,
    table_image: Optional[dict] = None,
    journal_prefix=None,
    snapshot_every: int = 2000,
    overload: Optional[OverloadPolicy] = None,
    faults: Optional[ServiceFaultPlan] = None,
) -> LinkStats:
    """Replay one link's workload through a fresh engine.

    ``table_image`` is a :mod:`repro.parallel.shm` blob descriptor of
    the persisted table file's bytes; when set, the link loads its
    decision table from shared memory instead of re-reading
    ``table_path`` from disk — the multi-process driver publishes the
    file once and every shard maps the same pages.  The resulting
    cache state (entries, counters) is identical to a file load.

    Event-driven: arrivals in time order, departures drained from a
    heap before each arrival, the carried-load integral updated at
    every state change.  The engine and its decision-table cache are
    private to the link, so a link's statistics do not depend on what
    other links (or processes) did — the bit-identity contract.

    With ``journal_prefix`` every decision is journaled
    (``<prefix>.a<attempt>.jsonl``) and the full state snapshotted
    every ``snapshot_every`` events.  A restarted attempt (attempt
    number read from the ambient replication context) recovers from
    the newest prior attempt's journal: snapshot restored exactly,
    post-snapshot events re-applied, then the live loop resumes —
    producing statistics byte-identical to an uninterrupted run.
    """
    snapshot_every = check_integer(snapshot_every, "snapshot_every", minimum=1)
    context = current_attempt()
    attempt = context[1] if context is not None else 0
    cues = (
        faults.shard_cues(link_index, attempt)
        if faults is not None
        else NO_CUES
    )

    if table_image is not None:
        tables = DecisionTableCache(persist=False)
        tables.load_text(attach_blob(table_image).decode("utf-8"))
    elif table_path is not None:
        tables = DecisionTableCache(path=table_path, persist=False)
    else:
        tables = DecisionTableCache()
    faulty_tables = None
    if cues.table_faults:
        faulty_tables = FaultyDecisionTables(tables, cues.table_faults, policy)
        tables = faulty_tables
    engine = AdmissionEngine(policy=policy, tables=tables, overload=overload)
    link_id = f"link-{link_index}"
    link = engine.add_link(link_id, capacity, qos)
    workload = generate_workload(spec, classes, rng)

    recovery = None
    fingerprint = None
    if journal_prefix is not None:
        fingerprint = _journal_fingerprint(
            spec,
            classes,
            capacity=capacity,
            qos=qos,
            policy=policy,
            link_index=link_index,
        )
        recovery = find_recovery(journal_prefix, attempt, fingerprint)

    replay = _LinkReplay()
    boundary = None
    if recovery is not None and recovery.snapshot_state is not None:
        replay.restore(recovery.snapshot_state, engine, link_id, tables)
        # The restored table counters already include the boundary
        # lookup the dead attempt performed; peek instead of lookup so
        # hit/miss totals stay byte-identical to a fault-free run.
        boundary = tables.peek(classes[0].model, capacity, qos, policy)
    if boundary is None:
        # The boundary the replay is checked against: admissible N of
        # the first class (deterministically the first table miss).
        boundary = tables.lookup(classes[0].model, capacity, qos, policy)
    count_policy = policy != EFFECTIVE_BANDWIDTH_METHOD

    arrivals = workload.arrival_times
    holdings = workload.holding_times
    labels = workload.class_indices
    models = [c.model for c in classes]
    overload_active = overload is not None

    journal = None
    if journal_prefix is not None:
        journal = LinkJournal(
            journal_path(journal_prefix, attempt),
            fingerprint,
            attempt=attempt,
        )
        if recovery is not None and recovery.snapshot_state is not None:
            # Seed this epoch's journal with the inherited snapshot so
            # a *second* crash recovers from this file alone.
            journal.snapshot(recovery.snapshot_seq, recovery.snapshot_state)

    admit = engine.admit
    release = engine.release
    heappush = heapq.heappush
    heappop = heapq.heappop
    departures = replay.departures

    def step(i: int, forced) -> None:
        """Process request ``i`` — live, or re-applied from a journal."""
        now = float(arrivals[i])
        while departures and departures[0][0] <= now:
            departed_at, connection_id = heappop(departures)
            replay.carried_load_seconds += link.admitted_mean_load * (
                departed_at - replay.last_event_time
            )
            replay.last_event_time = departed_at
            release(link_id, connection_id)
        replay.carried_load_seconds += link.admitted_mean_load * (
            now - replay.last_event_time
        )
        replay.last_event_time = now

        if faulty_tables is not None:
            faulty_tables.current_request = i
        occupancy_before = link.occupancy
        decision = admit(
            link_id,
            models[labels[i]],
            f"c{i}",
            now=now if overload_active else None,
            force_fallback=forced.fallback if forced is not None else False,
        )
        if decision.reason == REASON_SHED:
            kind = "s"
        elif decision.admitted:
            kind = "a"
        else:
            kind = "b"
        if forced is not None and kind != forced.kind:
            raise JournalError(
                f"link {link_index}: recomputed decision {kind!r} for "
                f"event {i} disagrees with journaled {forced.kind!r}; "
                "the journal does not describe this workload"
            )
        if kind == "s":
            replay.shed += 1
        elif kind == "a":
            replay.admitted += 1
            if decision.occupancy > replay.peak_occupancy:
                replay.peak_occupancy = decision.occupancy
            heappush(departures, (now + float(holdings[i]), f"c{i}"))
        else:
            replay.blocked += 1
        if decision.fallback:
            replay.fallbacks += 1
        if (
            count_policy
            and kind != "s"
            and not decision.fallback
            and decision.admitted != (occupancy_before < decision.admissible)
        ):
            replay.boundary_violations += 1
        if journal is not None:
            if cues.torn_event == i:
                journal.torn_event(i, kind, fallback=decision.fallback)
                raise InjectedCrash(
                    f"injected torn journal write at event {i} on "
                    f"link {link_index} attempt {attempt}"
                )
            journal.event(i, kind, fallback=decision.fallback)
            if (i + 1) % snapshot_every == 0:
                journal.snapshot(
                    i, replay.capture(i, engine, link_id, tables)
                )

    start = 0
    try:
        with span(
            "service.replay.link",
            link=link_index,
            attempt=attempt,
            requests=workload.n_requests,
            policy=policy,
        ):
            if recovery is not None:
                # Re-apply the dead attempt's post-snapshot events.
                # They run the same code as live requests (real table
                # lookups against exactly-restored caches), with the
                # journaled outcome asserted and fallback provenance
                # forced, so counters and floats advance identically.
                for event in recovery.events:
                    step(event.seq, event)
                start = recovery.next_seq
                if _spans._ENABLED and recovery.events:
                    _metrics.add(
                        "service.journal.events_reapplied",
                        len(recovery.events),
                    )
            for i in range(start, workload.n_requests):
                if cues.hang is not None and cues.hang[0] == i:
                    time.sleep(cues.hang[1])
                if cues.crash_request == i:
                    raise InjectedCrash(
                        f"injected shard crash before request {i} on "
                        f"link {link_index} attempt {attempt}"
                    )
                step(i, None)
    finally:
        if journal is not None:
            journal.close()

    if _spans._ENABLED:
        _metrics.add("service.requests_replayed", workload.n_requests)
        # add(0) still registers the instrument, so serial and
        # parallel snapshots list the same counters.
        _metrics.add("service.boundary_violations", replay.boundary_violations)

    return LinkStats(
        link_index=link_index,
        n_requests=workload.n_requests,
        admitted=replay.admitted,
        blocked=replay.blocked,
        shed=replay.shed,
        fallbacks=replay.fallbacks,
        peak_occupancy=replay.peak_occupancy,
        admissible=boundary.admissible,
        boundary_violations=replay.boundary_violations,
        carried_load_seconds=replay.carried_load_seconds,
        elapsed_seconds=workload.horizon_seconds,
        cache_hits=tables.hits,
        cache_misses=tables.misses,
    )


@dataclass(frozen=True, eq=False)
class _LinkReplayTask:
    """Picklable body of one link's replay, for any backend."""

    spec: WorkloadSpec
    classes: Tuple[ConnectionClass, ...]
    capacity: float
    qos: QoSRequirement
    policy: str
    table_path: Optional[str] = None
    table_image: Optional[dict] = None
    journal_dir: Optional[str] = None
    snapshot_every: int = 2000
    overload: Optional[OverloadPolicy] = None
    faults: Optional[ServiceFaultPlan] = None

    def __call__(self, index: int, generator: np.random.Generator):
        journal_prefix = (
            None
            if self.journal_dir is None
            else str(Path(self.journal_dir) / f"link-{index}")
        )
        stats = replay_link(
            self.spec,
            self.classes,
            capacity=self.capacity,
            qos=self.qos,
            policy=self.policy,
            rng=generator,
            link_index=index,
            table_path=self.table_path,
            table_image=self.table_image,
            journal_prefix=journal_prefix,
            snapshot_every=self.snapshot_every,
            overload=self.overload,
            faults=self.faults,
        )
        return stats.as_array(), float(stats.n_requests)


def _pool_links(
    policy: str,
    capacity: float,
    spec: WorkloadSpec,
    links: Sequence[LinkStats],
) -> ReplaySummary:
    """Aggregate per-link stats in index order (float order fixed)."""
    n_requests = sum(s.n_requests for s in links)
    admitted = sum(s.admitted for s in links)
    blocked = sum(s.blocked for s in links)
    shed = sum(s.shed for s in links)
    fallbacks = sum(s.fallbacks for s in links)
    # Guarded like the per-link ratios: a zero-length sweep point
    # (no links, or links that served nothing) reports 0.0 by
    # contract, never a ZeroDivisionError.
    utilization = 0.0
    for stats in links:
        utilization += stats.utilization(capacity)
    utilization = utilization / len(links) if links else 0.0
    cache_hits = sum(s.cache_hits for s in links)
    cache_misses = sum(s.cache_misses for s in links)
    cache_total = cache_hits + cache_misses
    return ReplaySummary(
        policy=policy,
        capacity=float(capacity),
        n_links=len(links),
        n_requests=n_requests,
        admitted=admitted,
        blocked=blocked,
        shed=shed,
        fallbacks=fallbacks,
        blocking_probability=blocked / n_requests if n_requests else 0.0,
        utilization=utilization,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        cache_hit_rate=cache_hits / cache_total if cache_total else 0.0,
        boundary_violations=sum(s.boundary_violations for s in links),
        offered_erlangs=spec.offered_erlangs,
        links=tuple(links),
    )


def replay_workload(
    spec: WorkloadSpec,
    classes: Sequence[ConnectionClass],
    *,
    n_links: int = 1,
    capacity: float,
    qos: Optional[QoSRequirement] = None,
    policy: str = "bahadur-rao",
    rng: RngLike = None,
    backend: Optional[Backend] = None,
    jobs: Optional[int] = None,
    pool: Optional[str] = None,
    table_path=None,
    journal_dir=None,
    snapshot_every: int = 2000,
    supervision: Optional[SupervisionPolicy] = None,
    overload: Optional[OverloadPolicy] = None,
    faults: Optional[ServiceFaultPlan] = None,
) -> ReplaySummary:
    """Replay ``spec`` on every link and pool the measured statistics.

    Each of the ``n_links`` independent links runs the same workload
    specification on its own ``SeedSequence``-spawned stream.  With
    ``jobs=N`` (or an explicit ``backend=``) links fan out across
    worker processes; the summary is bit-identical to a serial run on
    the same seed.  ``pool`` picks the worker discipline for
    ``jobs=N``: the shared persistent warm pool by default, or
    ``"spawn"`` for fresh processes per replay.  ``table_path`` points
    every link at a shared persisted decision table (loaded read-only;
    on a process backend the file ships to workers once through shared
    memory).

    Without ``supervision`` a failed shard fails the whole replay
    (legacy fail-fast).  With it, crashed and hung shards are
    restarted up to the policy's budget, each restart recovering from
    the shard's journal when ``journal_dir`` is set — the summary
    remains byte-identical to a fault-free run.
    """
    n_links = check_integer(n_links, "n_links", minimum=1)
    check_positive(capacity, "capacity")
    qos = qos if qos is not None else QoSRequirement()
    if faults is not None and supervision is None:
        raise ParameterError(
            "a ServiceFaultPlan requires supervision= (an unsupervised "
            "replay would simply die at the first injected fault)"
        )
    exec_backend = resolve_backend(backend, jobs, pool)
    # On a process backend, ship the persisted decision table to the
    # shards as one shared-memory image instead of n_links disk reads
    # (and n_links pickled paths racing the filesystem cache): the
    # parent publishes the file bytes once, every worker maps the same
    # pages, and the segment is unlinked when the replay returns.
    table_handle = None
    table_image = None
    if table_path is not None and isinstance(
        exec_backend, ProcessPoolBackend
    ):
        table_file = Path(table_path)
        if table_file.exists():
            table_handle = publish_blob(table_file.read_bytes())
            table_image = table_handle.descriptor
    task = _LinkReplayTask(
        spec=spec,
        classes=tuple(classes),
        capacity=float(capacity),
        qos=qos,
        policy=policy,
        table_path=None if table_path is None else str(table_path),
        table_image=table_image,
        journal_dir=None if journal_dir is None else str(journal_dir),
        snapshot_every=snapshot_every,
        overload=overload,
        faults=faults,
    )
    telemetry = _spans.is_enabled()
    generators = spawn_generators(rng, n_links)
    results: List = [None] * n_links
    try:
        with span(
            "service.replay",
            links=n_links,
            requests=spec.n_requests * n_links,
            policy=policy,
            jobs=1 if exec_backend is None else exec_backend.jobs,
        ):
            if supervision is not None:

                def payload_factory(
                    index: int, attempt: int
                ) -> WorkerPayload:
                    # Each attempt replays from a pristine copy of the
                    # link's stream: inline execution advances a
                    # generator in place, and a restarted attempt must
                    # regenerate the identical workload.
                    generator = pickle.loads(
                        pickle.dumps(generators[index])
                    )
                    return WorkerPayload(
                        index=index,
                        attempt=attempt,
                        task=task,
                        generator=generator,
                        label=f"workload-link-{index}",
                        telemetry=telemetry,
                        health_check=True,
                    )

                supervisor = ShardSupervisor(
                    payload_factory,
                    n_links,
                    backend=exec_backend,
                    policy=supervision,
                )
                results = supervisor.run()
                if exec_backend is not None:
                    # Telemetry merges in link-index order, not
                    # completion order (canonical-JSON bit-identity).
                    for result in results:
                        merge_result_telemetry(result)
            elif exec_backend is None:
                payloads = [
                    WorkerPayload(
                        index=i,
                        attempt=0,
                        task=task,
                        generator=generators[i],
                        label=f"workload-link-{i}",
                        telemetry=telemetry,
                        health_check=True,
                    )
                    for i in range(n_links)
                ]
                for payload in payloads:
                    result = execute_payload(payload)
                    if result.failed:
                        raise result.error
                    results[result.index] = result
            else:
                payloads = [
                    WorkerPayload(
                        index=i,
                        attempt=0,
                        task=task,
                        generator=generators[i],
                        label=f"workload-link-{i}",
                        telemetry=telemetry,
                        health_check=True,
                    )
                    for i in range(n_links)
                ]
                with exec_backend.session() as session:
                    for payload in payloads:
                        session.submit(payload)
                    while session.pending:
                        result = session.next_completed()
                        if result.failed:
                            raise result.error
                        results[result.index] = result
                # Telemetry merges in link-index order, not completion
                # order: sketch/counter snapshots (and their canonical
                # JSON) must not depend on which worker finished first.
                for result in results:
                    merge_result_telemetry(result)
    finally:
        if table_handle is not None:
            table_handle.unlink()
    links = [
        LinkStats.from_array(i, results[i].lost) for i in range(n_links)
    ]
    return _pool_links(policy, capacity, spec, links)
