"""Replicated simulation experiments (paper Section 5.5).

The paper runs 60 independent replications of half a million frames
per model, "ensuring accurate and numerically confident estimations
which may not be otherwise obtained due to the heavy-tailed ON/OFF
times of the FBNDP model."  This module is that harness: independent
seeded replications, pooled ratio-of-sums CLR estimates, and
per-buffer curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.obs import metrics as _metrics
from repro.obs import progress as _progress
from repro.obs.spans import span
from repro.queueing.multiplexer import ATMMultiplexer
from repro.queueing.statistics import (
    ReplicatedEstimate,
    pooled_clr,
    replicated_estimate,
)
from repro.queueing.workload import simulate_finite_buffer
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer, check_nonnegative_array


@dataclass(frozen=True)
class CLRReplicationSummary:
    """Pooled CLR and per-replication spread for one buffer size."""

    clr: float
    per_replication: ReplicatedEstimate
    total_lost: float
    total_arrived: float

    @property
    def observed_loss(self) -> bool:
        """Whether any replication lost cells (CLR resolution check)."""
        return self.total_lost > 0


def replicated_clr(
    multiplexer: ATMMultiplexer,
    n_frames: int,
    n_replications: int,
    rng: RngLike = None,
    *,
    confidence: float = 0.95,
) -> CLRReplicationSummary:
    """Estimate the CLR from independent replications.

    The headline estimate pools cells (total lost / total offered);
    per-replication CLRs are kept for the confidence interval.
    """
    n_frames = check_integer(n_frames, "n_frames", minimum=1)
    n_replications = check_integer(
        n_replications, "n_replications", minimum=1
    )
    lost = np.empty(n_replications)
    arrived = np.empty(n_replications)
    reporter = _progress.reporter(n_replications, label="replicated_clr")
    for i, rep_rng in enumerate(spawn_generators(rng, n_replications)):
        with span("replication", index=i, n_frames=n_frames):
            result = multiplexer.simulate_clr(n_frames, rep_rng)
        lost[i] = result.total_lost
        arrived[i] = result.arrived_cells
        _metrics.add("replications_completed")
        reporter.advance()
    reporter.finish()
    _check_arrivals(arrived)
    per_rep = replicated_estimate(lost / arrived, confidence)
    return CLRReplicationSummary(
        clr=pooled_clr(lost, arrived),
        per_replication=per_rep,
        total_lost=float(lost.sum()),
        total_arrived=float(arrived.sum()),
    )


def _check_arrivals(arrived: np.ndarray) -> None:
    """Reject replications that offered no cells.

    ``lost / arrived`` over a zero-arrival replication yields NaN
    (with a runtime warning at best) and silently poisons the pooled
    confidence interval — surface it as a configuration error instead.
    """
    zero = np.flatnonzero(arrived <= 0)
    if zero.size:
        raise SimulationError(
            f"replication(s) {zero.tolist()} produced no arrivals; "
            "the traffic model offered zero cells, so the CLR is "
            "undefined (check the model's mean rate and n_frames)"
        )


@dataclass(frozen=True)
class CLRCurve:
    """Simulated CLR versus buffer size for one model (Figs. 8-9)."""

    label: str
    buffer_cells: np.ndarray
    delay_seconds: np.ndarray
    clr: np.ndarray
    total_arrived: float

    def log10_clr(self) -> np.ndarray:
        """log10 CLR with -inf where no loss was observed."""
        with np.errstate(divide="ignore"):
            return np.log10(self.clr)


def replicated_clr_curve(
    multiplexer: ATMMultiplexer,
    buffer_values: Sequence[float],
    n_frames: int,
    n_replications: int,
    rng: RngLike = None,
    *,
    label: str = "",
) -> CLRCurve:
    """CLR at several buffer sizes, pooled over replications.

    Each replication samples one aggregate arrival path and reuses it
    for every buffer size (common random numbers — the curve shape is
    what the paper's figures compare, and CRN removes sampling jitter
    between adjacent buffer sizes).
    """
    n_frames = check_integer(n_frames, "n_frames", minimum=1)
    n_replications = check_integer(
        n_replications, "n_replications", minimum=1
    )
    buffers = check_nonnegative_array(buffer_values, "buffer_values")
    lost = np.zeros(buffers.shape[0])
    arrived_total = 0.0
    reporter = _progress.reporter(
        n_replications, label=label or "clr_curve"
    )
    for rep_index, rep_rng in enumerate(spawn_generators(rng, n_replications)):
        with span(
            "replication",
            index=rep_index,
            n_frames=n_frames,
            n_buffers=int(buffers.size),
            label=label,
        ):
            arrivals = multiplexer.model.sample_aggregate(
                n_frames, multiplexer.n_sources, rep_rng
            )
            arrived_total += float(arrivals.sum())
            for i, b in enumerate(buffers):
                lost[i] += simulate_finite_buffer(
                    arrivals, multiplexer.capacity, float(b)
                ).total_lost
        _metrics.add("replications_completed")
        reporter.advance()
    reporter.finish()
    if arrived_total <= 0:
        raise SimulationError(
            f"no cells arrived across {n_replications} replication(s) of "
            f"{n_frames} frames; the CLR curve is undefined "
            "(check the model's mean rate)"
        )
    capacity = multiplexer.capacity
    frame_duration = multiplexer.model.frame_duration
    return CLRCurve(
        label=label or repr(multiplexer.model),
        buffer_cells=buffers,
        delay_seconds=buffers * frame_duration / capacity,
        clr=lost / arrived_total,
        total_arrived=arrived_total,
    )
