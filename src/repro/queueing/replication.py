"""Replicated simulation experiments (paper Section 5.5).

The paper runs 60 independent replications of half a million frames
per model, "ensuring accurate and numerically confident estimations
which may not be otherwise obtained due to the heavy-tailed ON/OFF
times of the FBNDP model."  This module is that harness: independent
seeded replications, pooled ratio-of-sums CLR estimates, and
per-buffer curves.

Both entry points accept an optional
:class:`~repro.resilience.policy.ResiliencePolicy` (``resilience=``,
or a process-wide default installed via
:func:`repro.resilience.use_policy`).  With a policy, replications run
under the fault-tolerant supervisor of :mod:`repro.resilience.engine`:
failed replications are retried on fresh child streams, completed ones
checkpoint to disk for resume, and a deadline degrades the batch to a
pooled estimate over the completed subset (``degraded=True``) instead
of discarding everything.  Without one, behaviour is the classic
fail-fast loop — and a fault-free supervised run is bit-identical to
it, because attempt-0 streams reuse the exact ``spawn_generators``
derivation.

Both entry points also accept an execution backend (``jobs=N`` or an
explicit ``backend=``, see :mod:`repro.parallel`): replications are
independent, so they parallelize across worker processes.  Results
are pooled in replication-index order no matter which worker finishes
first, so the pooled CLR, every summary field, and any checkpoint
file are bit-identical to a serial run on the same seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterError, SimulationError
from repro.obs import metrics as _metrics
from repro.obs import progress as _progress
from repro.obs import spans as _spans
from repro.obs.spans import span
from repro.parallel.backends import Backend, resolve_backend
from repro.parallel.worker import (
    WorkerBatchPayload,
    WorkerBatchResult,
    WorkerPayload,
    merge_result_telemetry,
)
from repro.queueing.multiplexer import ATMMultiplexer
from repro.queueing.statistics import (
    ReplicatedEstimate,
    pooled_clr,
    replicated_estimate,
)
from repro.queueing.workload import (
    simulate_finite_buffer,
    simulate_finite_buffer_batch,
)
from repro.resilience.engine import (
    EngineResult,
    FailureRecord,
    run_replications,
)
from repro.resilience.policy import ResiliencePolicy, get_default_policy
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import (
    check_integer,
    check_nonnegative_array,
    check_simulation_health,
)


@dataclass(frozen=True)
class CLRReplicationSummary:
    """Pooled CLR and per-replication spread for one buffer size.

    ``degraded`` / ``n_failed`` flag partial pools produced by the
    resilience engine (retry budget exhausted or deadline reached);
    fail-fast runs always report a complete pool.
    """

    clr: float
    per_replication: ReplicatedEstimate
    total_lost: float
    total_arrived: float
    degraded: bool = False
    n_failed: int = 0
    n_retried: int = 0
    n_resumed: int = 0
    failures: Tuple[FailureRecord, ...] = ()

    @property
    def observed_loss(self) -> bool:
        """Whether any replication lost cells (CLR resolution check)."""
        return self.total_lost > 0

    def to_json(self) -> dict:
        """JSON-safe dict for JSONL export.

        Delegates the confidence-interval fields to
        :meth:`ReplicatedEstimate.to_json`, which exports ``null``
        bounds (with an :class:`~repro.exceptions.UndefinedCIWarning`)
        for single-replication pools instead of leaking NaN.
        """
        return {
            "clr": self.clr,
            "total_lost": self.total_lost,
            "total_arrived": self.total_arrived,
            "degraded": self.degraded,
            "n_failed": self.n_failed,
            "n_retried": self.n_retried,
            "n_resumed": self.n_resumed,
            "per_replication": self.per_replication.to_json(),
        }


@dataclass(frozen=True)
class _CLRTask:
    """Picklable body of one :func:`replicated_clr` replication.

    Module-level (not a closure) so it survives pickling into spawn
    workers; ``__call__`` matches the engine/backend task signature.
    """

    multiplexer: ATMMultiplexer
    n_frames: int

    def __call__(self, index: int, generator: np.random.Generator):
        result = self.multiplexer.simulate_clr(self.n_frames, generator)
        return result.total_lost, result.arrived_cells


@dataclass(frozen=True, eq=False)
class _CurveTask:
    """Picklable body of one :func:`replicated_clr_curve` replication."""

    multiplexer: ATMMultiplexer
    buffers: np.ndarray
    n_frames: int

    def __call__(self, index: int, generator: np.random.Generator):
        arrivals = self.multiplexer.model.sample_aggregate(
            self.n_frames, self.multiplexer.n_sources, generator
        )
        per_buffer = np.empty(self.buffers.shape[0])
        for i, b in enumerate(self.buffers):
            per_buffer[i] = simulate_finite_buffer(
                arrivals, self.multiplexer.capacity, float(b)
            ).total_lost
        return per_buffer, float(arrivals.sum())


@dataclass(frozen=True)
class _CLRBatchTask:
    """Batched body of :func:`replicated_clr`: one kernel pass per block.

    Row ``i`` samples from ``generators[i]`` and reduces with the same
    row-wise summation as :class:`_CLRTask`, so unpacking a batch
    result yields the exact per-replication floats of the unbatched
    payloads — batching changes task granularity, not arithmetic.
    """

    multiplexer: ATMMultiplexer
    n_frames: int

    def __call__(self, indices, generators):
        result = self.multiplexer.simulate_clr_batch(
            self.n_frames, generators
        )
        totals = result.total_lost
        return tuple(
            (float(totals[i]), float(result.arrived_cells[i]))
            for i in range(len(generators))
        )


@dataclass(frozen=True, eq=False)
class _CurveBatchTask:
    """Batched body of :func:`replicated_clr_curve` replications.

    Samples one arrival path per replication (common random numbers
    across buffer sizes, exactly as :class:`_CurveTask`), then runs
    the 2-D finite-buffer kernel once per buffer size over the whole
    block.
    """

    multiplexer: ATMMultiplexer
    buffers: np.ndarray
    n_frames: int

    def __call__(self, indices, generators):
        arrivals = np.stack(
            [
                self.multiplexer.model.sample_aggregate(
                    self.n_frames, self.multiplexer.n_sources, generator
                )
                for generator in generators
            ]
        )
        per_buffer = np.empty((arrivals.shape[0], self.buffers.shape[0]))
        for i, b in enumerate(self.buffers):
            per_buffer[:, i] = simulate_finite_buffer_batch(
                arrivals, self.multiplexer.capacity, float(b)
            ).total_lost
        return tuple(
            (per_buffer[i].copy(), float(arrivals[i].sum()))
            for i in range(arrivals.shape[0])
        )


#: Target number of batch tasks per worker when auto-sizing: two
#: tasks per process keeps the pool load-balanced (a straggler only
#: delays half a worker's share) without reintroducing per-task
#: dispatch overhead.
_TASKS_PER_WORKER = 2

#: Process-wide default for the ``batch=`` parameter (the runner's
#: ``--batch`` flag installs it so figure modules need no threading).
_DEFAULT_BATCH: Optional[int] = None


def set_default_batch(batch: Optional[int]) -> None:
    """Install a process-wide default for ``batch=`` (None restores
    auto-sizing).  Only fail-fast parallel runs consult it; the
    resilient path always stays per-replication."""
    global _DEFAULT_BATCH
    _DEFAULT_BATCH = (
        None if batch is None else check_integer(batch, "batch", minimum=1)
    )


def get_default_batch() -> Optional[int]:
    return _DEFAULT_BATCH


def _resolve_batch(
    batch: Optional[int], n_replications: int, backend: Optional[Backend]
) -> int:
    """Replications per worker task for a fail-fast run.

    ``None`` falls back to the process default, then auto-sizes:
    ``ceil(R / (jobs * _TASKS_PER_WORKER))`` on a process backend,
    except under live telemetry, where batching is disabled so
    per-replication spans keep their serial shape.  An explicit
    ``batch`` is honoured as given (``1`` forces the legacy
    per-replication payloads); explicit batching trades per-replication
    spans for one ``replication_batch`` span per block.
    """
    if batch is None:
        batch = _DEFAULT_BATCH
    if batch is not None:
        return check_integer(batch, "batch", minimum=1)
    if backend is None or _spans.is_enabled():
        return 1
    jobs = int(getattr(backend, "jobs", 1) or 1)
    if jobs <= 1:
        return 1
    return max(1, math.ceil(n_replications / (jobs * _TASKS_PER_WORKER)))


def _run_failfast(
    task,
    n_replications: int,
    rng: RngLike,
    backend: Backend,
    label: str,
    *,
    batch_task=None,
    batch_size: int = 1,
):
    """Run a fail-fast batch on ``backend``; results by index.

    Submits every replication up front, collects in completion order,
    and returns the results as an index-addressed list — the caller
    pools in index order, which keeps float-addition order identical
    to the inline loop.  The first failure re-raises its original
    exception, matching fail-fast semantics (other in-flight
    replications are cancelled by the session teardown).

    With ``batch_size > 1`` contiguous replication blocks ship as
    single :class:`WorkerBatchPayload` tasks running ``batch_task``;
    each block unpacks into the same index-addressed per-replication
    results, so pooling is unchanged.
    """
    telemetry = _spans.is_enabled()
    results = [None] * n_replications
    reporter = _progress.reporter(n_replications, label=label)
    try:
        with backend.session() as session:
            generators = list(spawn_generators(rng, n_replications))
            if batch_size > 1 and batch_task is not None:
                for base in range(0, n_replications, batch_size):
                    block = generators[base : base + batch_size]
                    session.submit(
                        WorkerBatchPayload(
                            base_index=base,
                            attempt=0,
                            task=batch_task,
                            generators=tuple(block),
                            label=label,
                            telemetry=telemetry,
                            health_check=False,
                        )
                    )
            else:
                for i, rep_rng in enumerate(generators):
                    session.submit(
                        WorkerPayload(
                            index=i,
                            attempt=0,
                            task=task,
                            generator=rep_rng,
                            label=label,
                            telemetry=telemetry,
                            health_check=False,
                        )
                    )
            while session.pending:
                result = session.next_completed()
                merge_result_telemetry(result)
                if result.failed:
                    raise result.error
                block = (
                    result.results
                    if isinstance(result, WorkerBatchResult)
                    else (result,)
                )
                for item in block:
                    results[item.index] = item
                    _metrics.add("replications_completed")
                    reporter.advance()
    finally:
        reporter.finish()
    return results


def _resolve_policy(
    resilience: Optional[ResiliencePolicy],
) -> Optional[ResiliencePolicy]:
    return resilience if resilience is not None else get_default_policy()


def _reject_resilient_batch(batch: Optional[int]) -> None:
    """Resilient runs retry and checkpoint per replication.

    Batched tasks would make a single worker fault discard (and a
    retry recompute) every replication in the block, and checkpoint
    records would no longer map one-to-one onto replications — so the
    resilient path simply refuses to batch rather than silently
    changing those semantics.
    """
    if batch is not None and check_integer(batch, "batch", minimum=1) > 1:
        raise ParameterError(
            "batch > 1 is fail-fast only: the resilience engine "
            "retries and checkpoints individual replications "
            "(pass batch=None or batch=1, or drop the policy)"
        )


def _fingerprint(
    kind: str,
    multiplexer: ATMMultiplexer,
    n_frames: int,
    buffers: Optional[np.ndarray] = None,
) -> dict:
    """Identity of one replicated batch, for checkpoint validation."""
    fingerprint = {
        "kind": kind,
        "model": repr(multiplexer.model),
        "n_sources": multiplexer.n_sources,
        "c_per_source": multiplexer.c_per_source,
        "n_frames": n_frames,
    }
    if buffers is None:
        fingerprint["buffer_cells"] = multiplexer.buffer_cells
    else:
        fingerprint["buffer_values"] = [float(b) for b in buffers]
    return fingerprint


def replicated_clr(
    multiplexer: ATMMultiplexer,
    n_frames: int,
    n_replications: int,
    rng: RngLike = None,
    *,
    confidence: float = 0.95,
    resilience: Optional[ResiliencePolicy] = None,
    backend: Optional[Backend] = None,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
) -> CLRReplicationSummary:
    """Estimate the CLR from independent replications.

    The headline estimate pools cells (total lost / total offered);
    per-replication CLRs are kept for the confidence interval.  With a
    resilience policy the batch survives per-replication faults,
    checkpoints, and degrades gracefully past its deadline.  With
    ``jobs=N`` (or an explicit ``backend=``) replications run across
    worker processes; the pooled result is bit-identical to serial.

    ``batch`` sets how many replications each worker task carries on a
    fail-fast parallel run (``None`` auto-sizes from the backend's job
    count, ``1`` forces one task per replication).  The resilient path
    keeps per-replication tasks — retry and checkpoint granularity is
    the replication — so an explicit ``batch > 1`` with a policy is a
    :class:`~repro.exceptions.ParameterError`.
    """
    n_frames = check_integer(n_frames, "n_frames", minimum=1)
    n_replications = check_integer(
        n_replications, "n_replications", minimum=1
    )
    policy = _resolve_policy(resilience)
    exec_backend = resolve_backend(backend, jobs)
    if policy is not None:
        _reject_resilient_batch(batch)
        return _replicated_clr_resilient(
            multiplexer, n_frames, n_replications, rng, confidence,
            policy, exec_backend,
        )
    if exec_backend is not None:
        results = _run_failfast(
            _CLRTask(multiplexer, n_frames),
            n_replications,
            rng,
            exec_backend,
            "replicated_clr",
            batch_task=_CLRBatchTask(multiplexer, n_frames),
            batch_size=_resolve_batch(
                batch, n_replications, exec_backend
            ),
        )
        lost = np.array([r.lost for r in results], dtype=float)
        arrived = np.array([r.arrived for r in results], dtype=float)
        _check_arrivals(arrived)
        per_rep = replicated_estimate(lost / arrived, confidence)
        return CLRReplicationSummary(
            clr=pooled_clr(lost, arrived),
            per_replication=per_rep,
            total_lost=float(lost.sum()),
            total_arrived=float(arrived.sum()),
        )
    lost = np.empty(n_replications)
    arrived = np.empty(n_replications)
    reporter = _progress.reporter(n_replications, label="replicated_clr")
    try:
        for i, rep_rng in enumerate(
            spawn_generators(rng, n_replications)
        ):
            with span("replication", index=i, n_frames=n_frames):
                result = multiplexer.simulate_clr(n_frames, rep_rng)
            lost[i] = result.total_lost
            arrived[i] = result.arrived_cells
            _metrics.add("replications_completed")
            reporter.advance()
    finally:
        # Always close out the progress line — a replication that
        # raises must not leave it dangling on stderr.
        reporter.finish()
    _check_arrivals(arrived)
    per_rep = replicated_estimate(lost / arrived, confidence)
    return CLRReplicationSummary(
        clr=pooled_clr(lost, arrived),
        per_replication=per_rep,
        total_lost=float(lost.sum()),
        total_arrived=float(arrived.sum()),
    )


def _replicated_clr_resilient(
    multiplexer: ATMMultiplexer,
    n_frames: int,
    n_replications: int,
    rng: RngLike,
    confidence: float,
    policy: ResiliencePolicy,
    backend: Optional[Backend] = None,
) -> CLRReplicationSummary:
    engine = run_replications(
        _CLRTask(multiplexer, n_frames),
        n_replications,
        rng,
        policy=policy,
        fingerprint=_fingerprint("clr", multiplexer, n_frames),
        label="replicated_clr",
        backend=backend,
    )
    return _summary_from_engine(engine, confidence)


def _summary_from_engine(
    engine: EngineResult, confidence: float
) -> CLRReplicationSummary:
    lost = np.array([o.lost for o in engine.outcomes], dtype=float)
    arrived = np.array([o.arrived for o in engine.outcomes], dtype=float)
    per_rep = replicated_estimate(lost / arrived, confidence)
    return CLRReplicationSummary(
        clr=pooled_clr(lost, arrived),
        per_replication=per_rep,
        total_lost=float(lost.sum()),
        total_arrived=float(arrived.sum()),
        degraded=engine.degraded,
        n_failed=engine.n_failed,
        n_retried=engine.n_retried,
        n_resumed=engine.n_resumed,
        failures=engine.failures,
    )


def _check_arrivals(arrived: np.ndarray) -> None:
    """Reject replications that offered no cells.

    ``lost / arrived`` over a zero-arrival replication yields NaN
    (with a runtime warning at best) and silently poisons the pooled
    confidence interval — surface it as a configuration error instead.
    The offending indices travel on the exception
    (``bad_replications``) so supervisors can react programmatically.
    """
    zero = np.flatnonzero(arrived <= 0)
    if zero.size:
        raise SimulationError(
            f"replication(s) {zero.tolist()} produced no arrivals; "
            "the traffic model offered zero cells, so the CLR is "
            "undefined (check the model's mean rate and n_frames)",
            bad_replications=zero.tolist(),
        )


@dataclass(frozen=True)
class CLRCurve:
    """Simulated CLR versus buffer size for one model (Figs. 8-9).

    ``degraded`` / ``n_failed`` mirror
    :class:`CLRReplicationSummary`: a resilience-supervised curve may
    pool fewer replications than requested.
    """

    label: str
    buffer_cells: np.ndarray
    delay_seconds: np.ndarray
    clr: np.ndarray
    total_arrived: float
    degraded: bool = False
    n_failed: int = 0
    n_retried: int = 0
    n_resumed: int = 0

    def log10_clr(self) -> np.ndarray:
        """log10 CLR with -inf where no loss was observed."""
        with np.errstate(divide="ignore"):
            return np.log10(self.clr)


def replicated_clr_curve(
    multiplexer: ATMMultiplexer,
    buffer_values: Sequence[float],
    n_frames: int,
    n_replications: int,
    rng: RngLike = None,
    *,
    label: str = "",
    resilience: Optional[ResiliencePolicy] = None,
    backend: Optional[Backend] = None,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
) -> CLRCurve:
    """CLR at several buffer sizes, pooled over replications.

    Each replication samples one aggregate arrival path and reuses it
    for every buffer size (common random numbers — the curve shape is
    what the paper's figures compare, and CRN removes sampling jitter
    between adjacent buffer sizes).  ``jobs=N`` / ``backend=``
    distribute replications across worker processes with bit-identical
    pooled curves (losses accumulate in replication-index order).
    ``batch`` behaves as in :func:`replicated_clr`.
    """
    n_frames = check_integer(n_frames, "n_frames", minimum=1)
    n_replications = check_integer(
        n_replications, "n_replications", minimum=1
    )
    buffers = check_nonnegative_array(buffer_values, "buffer_values")
    policy = _resolve_policy(resilience)
    exec_backend = resolve_backend(backend, jobs)
    if policy is not None:
        _reject_resilient_batch(batch)
        return _replicated_clr_curve_resilient(
            multiplexer, buffers, n_frames, n_replications, rng,
            label, policy, exec_backend,
        )
    if exec_backend is not None:
        results = _run_failfast(
            _CurveTask(multiplexer, buffers, n_frames),
            n_replications,
            rng,
            exec_backend,
            label or "clr_curve",
            batch_task=_CurveBatchTask(multiplexer, buffers, n_frames),
            batch_size=_resolve_batch(
                batch, n_replications, exec_backend
            ),
        )
        lost = np.zeros(buffers.shape[0])
        arrived_total = 0.0
        for result in results:
            lost += np.asarray(result.lost, dtype=float)
            arrived_total += result.arrived
        check_simulation_health(lost, arrived_total, context="clr_curve")
        if arrived_total <= 0:
            raise SimulationError(
                f"no cells arrived across {n_replications} "
                f"replication(s) of {n_frames} frames; the CLR curve "
                "is undefined (check the model's mean rate)"
            )
        return _make_curve(multiplexer, buffers, lost, arrived_total, label)
    lost = np.zeros(buffers.shape[0])
    arrived_total = 0.0
    reporter = _progress.reporter(
        n_replications, label=label or "clr_curve"
    )
    try:
        for rep_index, rep_rng in enumerate(
            spawn_generators(rng, n_replications)
        ):
            with span(
                "replication",
                index=rep_index,
                n_frames=n_frames,
                n_buffers=int(buffers.size),
                label=label,
            ):
                arrivals = multiplexer.model.sample_aggregate(
                    n_frames, multiplexer.n_sources, rep_rng
                )
                arrived_total += float(arrivals.sum())
                for i, b in enumerate(buffers):
                    lost[i] += simulate_finite_buffer(
                        arrivals, multiplexer.capacity, float(b)
                    ).total_lost
            _metrics.add("replications_completed")
            reporter.advance()
    finally:
        reporter.finish()
    check_simulation_health(lost, arrived_total, context="clr_curve")
    if arrived_total <= 0:
        raise SimulationError(
            f"no cells arrived across {n_replications} replication(s) of "
            f"{n_frames} frames; the CLR curve is undefined "
            "(check the model's mean rate)"
        )
    return _make_curve(multiplexer, buffers, lost, arrived_total, label)


def _replicated_clr_curve_resilient(
    multiplexer: ATMMultiplexer,
    buffers: np.ndarray,
    n_frames: int,
    n_replications: int,
    rng: RngLike,
    label: str,
    policy: ResiliencePolicy,
    backend: Optional[Backend] = None,
) -> CLRCurve:
    engine = run_replications(
        _CurveTask(multiplexer, buffers, n_frames),
        n_replications,
        rng,
        policy=policy,
        fingerprint=_fingerprint(
            "clr_curve", multiplexer, n_frames, buffers=buffers
        ),
        label=label or "clr_curve",
        backend=backend,
    )
    # Accumulate in replication-index order — the same float-addition
    # order as the fail-fast loop — so a resumed batch reproduces an
    # uninterrupted run bit for bit.
    lost = np.zeros(buffers.shape[0])
    arrived_total = 0.0
    for outcome in engine.outcomes:
        lost += np.asarray(outcome.lost, dtype=float)
        arrived_total += outcome.arrived
    return _make_curve(
        multiplexer,
        buffers,
        lost,
        arrived_total,
        label,
        degraded=engine.degraded,
        n_failed=engine.n_failed,
        n_retried=engine.n_retried,
        n_resumed=engine.n_resumed,
    )


def _make_curve(
    multiplexer: ATMMultiplexer,
    buffers: np.ndarray,
    lost: np.ndarray,
    arrived_total: float,
    label: str,
    **resilience_fields: object,
) -> CLRCurve:
    capacity = multiplexer.capacity
    frame_duration = multiplexer.model.frame_duration
    return CLRCurve(
        label=label or repr(multiplexer.model),
        buffer_cells=buffers,
        delay_seconds=buffers * frame_duration / capacity,
        clr=lost / arrived_total,
        total_arrived=arrived_total,
        **resilience_fields,
    )
