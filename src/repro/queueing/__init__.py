"""ATM multiplexer simulation: workload recursions, replications, stats."""

from repro.queueing.cell_level import (
    CellLevelResult,
    deterministic_smoothing_times,
    simulate_cell_level,
)
from repro.queueing.batch_means import (
    BatchMeansEstimate,
    batch_means,
    batch_means_clr,
)
from repro.queueing.delay import DelayStatistics
from repro.queueing.heterogeneous import HeterogeneousMultiplexer
from repro.queueing.exact_markov import (
    ExactCLRResult,
    MarkovArrivalChain,
    exact_clr,
)
from repro.queueing.multiplexer import ATMMultiplexer
from repro.queueing.replication import (
    CLRCurve,
    CLRReplicationSummary,
    replicated_clr,
    replicated_clr_curve,
)
from repro.queueing.statistics import (
    ReplicatedEstimate,
    pooled_clr,
    replicated_estimate,
    survival_function,
)
from repro.queueing.workload import (
    FiniteBufferResult,
    InfiniteBufferResult,
    simulate_finite_buffer,
    simulate_infinite_buffer,
)

__all__ = [
    "ATMMultiplexer",
    "BatchMeansEstimate",
    "CLRCurve",
    "CLRReplicationSummary",
    "CellLevelResult",
    "DelayStatistics",
    "ExactCLRResult",
    "FiniteBufferResult",
    "HeterogeneousMultiplexer",
    "MarkovArrivalChain",
    "exact_clr",
    "InfiniteBufferResult",
    "ReplicatedEstimate",
    "batch_means",
    "batch_means_clr",
    "deterministic_smoothing_times",
    "pooled_clr",
    "replicated_clr",
    "replicated_clr_curve",
    "replicated_estimate",
    "simulate_cell_level",
    "simulate_finite_buffer",
    "simulate_infinite_buffer",
    "survival_function",
]
