"""Queueing-delay statistics from workload sample paths.

The paper's QoS budget is stated as a *maximum* delay (buffer size B
capped at 20-30 msec of drain time), but the same workload paths yield
the full delay distribution: a FIFO cell that joins when the buffer
holds W cells waits ``W / C`` frames = ``W T_s / C`` seconds before
transmission.  Evaluating the workload at frame starts (the paper's
granularity) gives a per-frame delay sequence whose quantiles and
survival function are the natural latency metrics to report alongside
the CLR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DelayStatistics:
    """Distribution summary of FIFO queueing delay (seconds)."""

    delays: np.ndarray

    @classmethod
    def from_workload(
        cls,
        workload: np.ndarray,
        capacity: float,
        frame_duration: float,
    ) -> "DelayStatistics":
        """Delays implied by a workload path.

        ``capacity`` in cells/frame; a cell behind W queued cells waits
        ``W * T_s / C`` seconds.
        """
        check_positive(capacity, "capacity")
        check_positive(frame_duration, "frame_duration")
        w = np.asarray(workload, dtype=float)
        if w.ndim != 1 or w.size == 0:
            raise SimulationError("workload must be a non-empty 1-D array")
        return cls(delays=w * frame_duration / capacity)

    @property
    def mean(self) -> float:
        return float(self.delays.mean())

    @property
    def maximum(self) -> float:
        return float(self.delays.max())

    def quantile(self, q) -> np.ndarray:
        """Delay quantiles (seconds) at probabilities ``q``."""
        return np.quantile(self.delays, q)

    def survival(self, thresholds_seconds: Sequence[float]) -> np.ndarray:
        """``P(delay > d)`` for each threshold d."""
        sorted_delays = np.sort(self.delays)
        t = np.atleast_1d(np.asarray(thresholds_seconds, dtype=float))
        exceed = sorted_delays.shape[0] - np.searchsorted(
            sorted_delays, t, side="right"
        )
        return exceed / sorted_delays.shape[0]

    def violates(self, max_delay_seconds: float) -> float:
        """Fraction of frames whose queueing delay exceeds the budget."""
        check_positive(max_delay_seconds, "max_delay_seconds")
        return float(self.survival([max_delay_seconds])[0])
