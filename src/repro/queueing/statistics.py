"""Estimators and confidence intervals for loss statistics.

The paper's simulations (Section 5.5) report cell loss rates down to
1e-6 from 60 replications of half a million frames.  Replication
summaries here carry normal-theory confidence intervals over the
per-replication CLRs (the standard batch-means style treatment; the
per-frame losses inside one replication are heavily correlated, the
replication-level values are i.i.d. by construction).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats

from repro.exceptions import SimulationError, UndefinedCIWarning


@dataclass(frozen=True)
class ReplicatedEstimate:
    """Mean-and-CI summary of per-replication estimates of one quantity."""

    values: np.ndarray
    confidence: float

    @property
    def n_replications(self) -> int:
        return int(self.values.shape[0])

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std_error(self) -> float:
        if self.n_replications < 2:
            return math.nan
        return float(self.values.std(ddof=1) / math.sqrt(self.n_replications))

    @property
    def half_width(self) -> float:
        """Student-t half width of the two-sided CI at ``confidence``."""
        n = self.n_replications
        if n < 2:
            return math.nan
        quantile = stats.t.ppf(0.5 + self.confidence / 2.0, df=n - 1)
        return float(quantile * self.std_error)

    @property
    def interval(self) -> tuple:
        half = self.half_width
        return (self.mean - half, self.mean + half)

    @property
    def log10_mean(self) -> float:
        """log10 of the mean, -inf when no events were observed."""
        return math.log10(self.mean) if self.mean > 0 else -math.inf

    def to_json(self) -> dict:
        """JSON-safe summary dict (round-trips ``allow_nan=False``).

        A single replication has no spread, so ``std_error`` /
        ``half_width`` / ``interval`` export as ``null`` — with an
        explicit :class:`~repro.exceptions.UndefinedCIWarning` — rather
        than the bare ``NaN`` the numeric properties return, which
        ``json.dumps`` would happily write as invalid JSON.
        """
        if self.n_replications < 2:
            warnings.warn(
                UndefinedCIWarning(
                    "confidence interval undefined for a single "
                    "replication; exporting null CI bounds "
                    "(run >= 2 replications for a spread estimate)"
                ),
                stacklevel=2,
            )
            std_error: Optional[float] = None
            half_width: Optional[float] = None
            interval: Optional[list] = None
        else:
            std_error = self.std_error
            half_width = self.half_width
            low, high = self.interval
            interval = [low, high]
        return {
            "mean": self.mean,
            "n_replications": self.n_replications,
            "confidence": self.confidence,
            "std_error": std_error,
            "half_width": half_width,
            "interval": interval,
        }

    def __repr__(self) -> str:
        return (
            f"ReplicatedEstimate(mean={self.mean:.4g}, "
            f"half_width={self.half_width:.2g}, n={self.n_replications})"
        )


def replicated_estimate(
    values: Sequence[float], confidence: float = 0.95
) -> ReplicatedEstimate:
    """Bundle per-replication values into a :class:`ReplicatedEstimate`."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise SimulationError("need at least one replication value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return ReplicatedEstimate(values=arr, confidence=confidence)


def pooled_clr(lost: Sequence[float], arrived: Sequence[float]) -> float:
    """Ratio-of-sums CLR across replications (the less biased pooling).

    Averaging per-replication ratios overweights light-traffic
    replications; total lost over total offered is the estimator that
    converges to the true stationary CLR.
    """
    lost_arr = np.asarray(lost, dtype=float)
    arrived_arr = np.asarray(arrived, dtype=float)
    if lost_arr.shape != arrived_arr.shape or lost_arr.size == 0:
        raise SimulationError("lost/arrived must be equal-length, non-empty")
    total_arrived = arrived_arr.sum()
    if total_arrived <= 0:
        raise SimulationError("no arrivals across replications")
    return float(lost_arr.sum() / total_arrived)


def survival_function(
    samples: np.ndarray, thresholds: np.ndarray
) -> np.ndarray:
    """Empirical ``P(X > t)`` for each threshold."""
    x = np.sort(np.asarray(samples, dtype=float))
    if x.size == 0:
        raise SimulationError("samples must be non-empty")
    t = np.atleast_1d(np.asarray(thresholds, dtype=float))
    return (x.shape[0] - np.searchsorted(x, t, side="right")) / x.shape[0]
