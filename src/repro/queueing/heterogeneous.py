"""Simulation of heterogeneous traffic mixes.

The simulation counterpart of :mod:`repro.core.heterogeneous`: a FIFO
multiplexer fed by several classes of sources (each class an
independent aggregate of i.i.d. copies of its model), sharing one
capacity and one buffer.  Used to validate the mix-level Bahadur-Rao
analysis the same way the homogeneous simulator validates Figs. 5-10.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.heterogeneous import TrafficClass
from repro.exceptions import ParameterError
from repro.queueing.workload import FiniteBufferResult, simulate_finite_buffer
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer, check_positive


class HeterogeneousMultiplexer:
    """A buffered FIFO multiplexer for a mix of traffic classes.

    Parameters
    ----------
    classes:
        The mix; classes with ``count == 0`` are allowed and ignored.
        Every class model must share one frame duration.
    capacity:
        Total service C (cells/frame).
    buffer_cells:
        Total buffer B (cells).
    """

    def __init__(
        self,
        classes: Sequence[TrafficClass],
        capacity: float,
        buffer_cells: float,
    ):
        self.classes = tuple(tc for tc in classes if tc.count > 0)
        if not self.classes:
            raise ParameterError("mix has no sources")
        durations = {tc.model.frame_duration for tc in self.classes}
        if len(durations) != 1:
            raise ParameterError(
                f"classes must share a frame duration, got {sorted(durations)}"
            )
        self.capacity = check_positive(capacity, "capacity")
        self.buffer_cells = check_positive(
            buffer_cells, "buffer_cells", strict=False
        )

    @property
    def offered_load(self) -> float:
        """Total mean cells/frame."""
        return float(
            sum(tc.count * tc.model.mean for tc in self.classes)
        )

    @property
    def utilization(self) -> float:
        return self.offered_load / self.capacity

    def sample_mix(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        """One aggregate arrival path of the whole mix."""
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        total = np.zeros(n_frames)
        for tc, class_rng in zip(
            self.classes, spawn_generators(rng, len(self.classes))
        ):
            total += tc.model.sample_aggregate(
                n_frames, tc.count, class_rng
            )
        return total

    def simulate_clr(
        self, n_frames: int, rng: RngLike = None
    ) -> FiniteBufferResult:
        """One finite-buffer replication of the mix."""
        arrivals = self.sample_mix(n_frames, rng)
        return simulate_finite_buffer(
            arrivals, self.capacity, self.buffer_cells
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{tc.count}x{type(tc.model).__name__}" for tc in self.classes
        )
        return (
            f"HeterogeneousMultiplexer([{parts}], C={self.capacity:.6g}, "
            f"B={self.buffer_cells:.6g}, utilization={self.utilization:.3f})"
        )
