"""Frame-level workload recursions for an ATM multiplexer.

Section 4.2 / 5.5 of the paper: the multiplexer serves C cells per
frame from a buffer of B cells fed by the aggregate frame process
X_n.  With the paper's deterministic smoothing (each source's cells
equispaced over the frame, all sources frame-aligned), the in-frame
dynamics are fluid — arrival rate X_n/T_s and service rate C/T_s are
constant within a frame — so the workload at frame boundaries obeys
the Lindley-type recursion of Section 4.2:

    ``W_{n+1} = (min(W_n + X_n - C, B))^+``

and the fluid loss in frame n is exactly

    ``loss_n = max(W_n + X_n - C - B, 0)``

(the buffer can only overshoot when the frame's net input is
positive, in which case the overshoot is linear in time and the
spilled volume is the terminal excess).

Two simulators:

* :func:`simulate_finite_buffer` — the sequential recursion above
  (finite B has no prefix-scan form);
* :func:`simulate_infinite_buffer` — exact O(n) vectorized form via
  the reflection identity ``W_n = S_n - min_{k <= n} S_k`` with
  ``S_n = sum_{i<n} (X_i - C)``, used for BOP (overflow-probability)
  estimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import accumulate

import numpy as np

from repro.exceptions import SimulationError
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FiniteBufferResult:
    """Outcome of a finite-buffer run.

    Attributes
    ----------
    workload:
        W_n at the *start* of each frame (before that frame's
        arrivals), length n_frames.
    lost_cells:
        Fluid loss per frame, same length.
    arrived_cells:
        Total offered cells (sum of the input).
    """

    workload: np.ndarray
    lost_cells: np.ndarray
    arrived_cells: float

    @property
    def total_lost(self) -> float:
        return float(self.lost_cells.sum())

    @property
    def clr(self) -> float:
        """Cell loss rate: fraction of offered cells lost."""
        if self.arrived_cells <= 0:
            raise SimulationError("no cells arrived; CLR undefined")
        return self.total_lost / self.arrived_cells


def simulate_finite_buffer(
    arrivals: np.ndarray, capacity: float, buffer_size: float
) -> FiniteBufferResult:
    """Run the finite-buffer recursion over an arrival sample path.

    Parameters
    ----------
    arrivals:
        Aggregate cells per frame, X_n (length = number of frames).
    capacity:
        Service C in cells/frame (total, not per source).
    buffer_size:
        Buffer B in cells; 0 models bufferless multiplexing.
    """
    check_positive(capacity, "capacity")
    check_positive(buffer_size, "buffer_size", strict=False)
    x = np.asarray(arrivals, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise SimulationError("arrivals must be a non-empty 1-D array")

    # itertools.accumulate keeps the sequential recursion in C-speed
    # iteration; the loss extraction is then fully vectorized.
    def step(w: float, a: float) -> float:
        return min(max(w + a - capacity, 0.0), buffer_size)

    after = np.fromiter(
        accumulate(x, step, initial=0.0), dtype=float, count=x.size + 1
    )
    workload = after[:-1]  # W_n at frame start
    lost = np.maximum(workload + x - capacity - buffer_size, 0.0)
    if _spans._ENABLED:
        _record_run_telemetry(x, lost, after[1:])
    return FiniteBufferResult(
        workload=workload, lost_cells=lost, arrived_cells=float(x.sum())
    )


def _busy_period_lengths(busy: np.ndarray) -> np.ndarray:
    """Lengths (frames) of maximal runs of True in a boolean array."""
    padded = np.concatenate(([False], busy, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    return edges[1::2] - edges[::2]


def _record_run_telemetry(
    x: np.ndarray, lost: np.ndarray, end_workload: np.ndarray
) -> None:
    """Telemetry for one finite-buffer run (only called when enabled).

    Busy periods are maximal runs of frames ending with a non-empty
    buffer — for heavy-tailed inputs their length distribution is the
    quantity that controls estimator variance.
    """
    _metrics.add("frames_simulated", int(x.size))
    _metrics.add("cells_arrived", float(x.sum()))
    _metrics.add("cells_lost", float(lost.sum()))
    _metrics.add("loss_frames", int(np.count_nonzero(lost)))
    lengths = _busy_period_lengths(end_workload > 0.0)
    if lengths.size:
        _metrics.observe_many("busy_period_frames", lengths)


@dataclass(frozen=True)
class InfiniteBufferResult:
    """Outcome of an infinite-buffer run (workload only, no loss)."""

    workload: np.ndarray

    def overflow_probability(self, thresholds: np.ndarray) -> np.ndarray:
        """Empirical ``P(W > B)`` at each threshold (stationary fraction)."""
        t = np.atleast_1d(np.asarray(thresholds, dtype=float))
        w_sorted = np.sort(self.workload)
        n = w_sorted.shape[0]
        exceed = n - np.searchsorted(w_sorted, t, side="right")
        return exceed / n


def simulate_infinite_buffer(
    arrivals: np.ndarray, capacity: float
) -> InfiniteBufferResult:
    """Exact infinite-buffer workload via the reflection identity.

    ``W_{n+1} = max(W_n + X_n - C, 0)`` started empty equals
    ``S_{n+1} - min_{0 <= k <= n+1} S_k`` with S the centered cumulative
    sum — one cumsum and one running minimum, no Python loop.
    Returned workloads are at frame starts (W_0 = 0 included).
    """
    check_positive(capacity, "capacity")
    x = np.asarray(arrivals, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise SimulationError("arrivals must be a non-empty 1-D array")
    if _spans._ENABLED:
        _metrics.add("frames_simulated", int(x.size))
        _metrics.add("cells_arrived", float(x.sum()))
    s = np.concatenate(([0.0], np.cumsum(x - capacity)))
    running_min = np.minimum.accumulate(s)
    return InfiniteBufferResult(workload=s - running_min)
