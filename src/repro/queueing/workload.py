"""Frame-level workload recursions for an ATM multiplexer.

Section 4.2 / 5.5 of the paper: the multiplexer serves C cells per
frame from a buffer of B cells fed by the aggregate frame process
X_n.  With the paper's deterministic smoothing (each source's cells
equispaced over the frame, all sources frame-aligned), the in-frame
dynamics are fluid — arrival rate X_n/T_s and service rate C/T_s are
constant within a frame — so the workload at frame boundaries obeys
the Lindley-type recursion of Section 4.2:

    ``W_{n+1} = (min(W_n + X_n - C, B))^+``

and the fluid loss in frame n is exactly

    ``loss_n = max(W_n + X_n - C - B, 0)``

(the buffer can only overshoot when the frame's net input is
positive, in which case the overshoot is linear in time and the
spilled volume is the terminal excess).

Simulators:

* :func:`simulate_finite_buffer` — the recursion above for one
  arrival path, built on the chunked kernel below;
* :func:`simulate_finite_buffer_batch` — the same recursion run
  across a replication axis (``(R, n)`` arrivals) in one pass, the
  engine of the batched parallel workers;
* :func:`simulate_infinite_buffer` / ``_batch`` — exact O(n)
  vectorized form via the reflection identity
  ``W_n = S_n - min_{k <= n} S_k`` with ``S_n = sum_{i<n} (X_i - C)``,
  used for BOP (overflow-probability) estimation.

The finite-buffer recursion has no exact prefix-scan form, so the
kernel works in fixed-size frame chunks: within a chunk the *uncapped*
reflected trajectory (a cumsum + running minimum) dominates the capped
one, so any row whose uncapped trajectory never exceeds ``B`` is
loss-free in that chunk and the two trajectories coincide; rows that
do overflow fall back to the exact sequential recursion for that chunk
only.  At the target operating points (CLR around 1e-6) almost every
(row, chunk) pair takes the vector path.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import accumulate

import numpy as np

from repro.exceptions import SimulationError
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.utils.validation import check_positive

#: Frames per kernel chunk.  This constant is part of the *numeric
#: definition* of the recursion, not a tuning knob: chunk-boundary
#: states on loss-free chunks come from the vectorized reflection
#: formula, whose floating-point path differs by ulps from the
#: sequential recursion, so changing the chunk size changes low-order
#: bits.  Every caller — serial, batched workers, the resilience
#: engine — goes through the same kernel with the same chunk size,
#: which is what keeps parallel results bit-identical to serial.
_KERNEL_CHUNK = 16_384


def _finite_buffer_kernel(
    x: np.ndarray,
    capacity: float,
    buffer_size: float,
    *,
    want_workload: bool,
):
    """Run the finite-buffer recursion over ``(R, n)`` arrival rows.

    Returns ``(lost, workload, final)``: per-frame fluid loss
    ``(R, n)``, frame-start workload ``(R, n)`` (``None`` unless
    requested), and the end-of-run workload ``(R,)``.

    Per chunk, ``s`` is the row cumsum of ``x - C`` and the uncapped
    trajectory from entry state ``w0`` is
    ``v_k = max(w0 + s_k, s_k - min(0, min_{j<=k} s_j))``.  The capped
    (finite-``B``) workload is dominated by ``v``, so ``max_k v_k <= B``
    proves the chunk loss-free for that row, in which case the capped
    recursion *equals* ``v`` and the row advances vectorized; otherwise
    the row replays the chunk through the exact sequential recursion.
    All row-wise operations (cumsum, running min, row sums) are
    independent of how many rows share the call, so row ``i`` of a
    batch is bit-identical to running that row alone.
    """
    n_rows, n_frames = x.shape
    lost = np.zeros_like(x)
    workload = np.empty_like(x) if want_workload else None
    state = np.zeros(n_rows)

    def step(w: float, a: float) -> float:
        return min(max(w + a - capacity, 0.0), buffer_size)

    for start in range(0, n_frames, _KERNEL_CHUNK):
        stop = min(start + _KERNEL_CHUNK, n_frames)
        chunk = x[:, start:stop]
        s = np.cumsum(chunk - capacity, axis=1)
        hold = np.minimum(np.minimum.accumulate(s, axis=1), 0.0)
        v = np.maximum(state[:, np.newaxis] + s, s - hold)
        if want_workload:
            workload[:, start] = state
            workload[:, start + 1 : stop] = v[:, :-1]
        new_state = v[:, -1].copy()
        # Rows whose uncapped trajectory overflows B replay the chunk
        # sequentially (C-speed via itertools.accumulate); `lost` stays
        # exactly 0.0 everywhere else.
        for i in np.flatnonzero(v.max(axis=1) > buffer_size):
            row = chunk[i]
            after = np.fromiter(
                accumulate(row, step, initial=float(state[i])),
                dtype=float,
                count=row.size + 1,
            )
            row_start = after[:-1]
            lost[i, start:stop] = np.maximum(
                row_start + row - capacity - buffer_size, 0.0
            )
            if want_workload:
                workload[i, start:stop] = row_start
            new_state[i] = after[-1]
        state = new_state
    return lost, workload, state


@dataclass(frozen=True)
class FiniteBufferResult:
    """Outcome of a finite-buffer run.

    Attributes
    ----------
    workload:
        W_n at the *start* of each frame (before that frame's
        arrivals), length n_frames.
    lost_cells:
        Fluid loss per frame, same length.
    arrived_cells:
        Total offered cells (sum of the input).
    """

    workload: np.ndarray
    lost_cells: np.ndarray
    arrived_cells: float

    @property
    def total_lost(self) -> float:
        return float(self.lost_cells.sum())

    @property
    def clr(self) -> float:
        """Cell loss rate: fraction of offered cells lost."""
        if self.arrived_cells <= 0:
            raise SimulationError("no cells arrived; CLR undefined")
        return self.total_lost / self.arrived_cells


def simulate_finite_buffer(
    arrivals: np.ndarray, capacity: float, buffer_size: float
) -> FiniteBufferResult:
    """Run the finite-buffer recursion over an arrival sample path.

    Parameters
    ----------
    arrivals:
        Aggregate cells per frame, X_n (length = number of frames).
    capacity:
        Service C in cells/frame (total, not per source).
    buffer_size:
        Buffer B in cells; 0 models bufferless multiplexing.
    """
    check_positive(capacity, "capacity")
    check_positive(buffer_size, "buffer_size", strict=False)
    x = np.ascontiguousarray(arrivals, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise SimulationError("arrivals must be a non-empty 1-D array")
    lost2d, work2d, final = _finite_buffer_kernel(
        x[np.newaxis, :], capacity, buffer_size, want_workload=True
    )
    workload = work2d[0]
    lost = lost2d[0]
    if _spans._ENABLED:
        end = np.empty_like(workload)
        end[:-1] = workload[1:]
        end[-1] = final[0]
        _record_run_telemetry(x, lost, end)
    return FiniteBufferResult(
        workload=workload, lost_cells=lost, arrived_cells=float(x.sum())
    )


@dataclass(frozen=True)
class FiniteBufferBatchResult:
    """Outcome of a batched finite-buffer run over ``R`` replications.

    Row ``i`` is bit-identical to
    ``simulate_finite_buffer(arrivals[i], ...)`` on the same inputs —
    the batched kernel is the same kernel, and every row-wise numpy
    operation is independent of the other rows.

    Attributes
    ----------
    lost_cells:
        Per-frame fluid loss, shape ``(R, n_frames)``.
    arrived_cells:
        Offered cells per replication, shape ``(R,)``.
    final_workload:
        End-of-run workload per replication, shape ``(R,)``.
    """

    lost_cells: np.ndarray
    arrived_cells: np.ndarray
    final_workload: np.ndarray

    @property
    def total_lost(self) -> np.ndarray:
        # Summed row-by-row (each row of a C-contiguous matrix is
        # itself contiguous) so each entry carries the same pairwise
        # summation bits as ``FiniteBufferResult.total_lost``.
        return np.array([float(row.sum()) for row in self.lost_cells])


def simulate_finite_buffer_batch(
    arrivals: np.ndarray, capacity: float, buffer_size: float
) -> FiniteBufferBatchResult:
    """Run the finite-buffer recursion over ``R`` replications at once.

    ``arrivals`` is ``(R, n_frames)`` — one aggregate sample path per
    row.  One chunked kernel pass replaces ``R`` Python-level runs;
    this is the engine behind the batched parallel workers.
    """
    check_positive(capacity, "capacity")
    check_positive(buffer_size, "buffer_size", strict=False)
    x = np.ascontiguousarray(arrivals, dtype=float)
    if x.ndim != 2 or x.shape[0] == 0 or x.shape[1] == 0:
        raise SimulationError(
            "arrivals must be a non-empty 2-D array "
            "(replications x frames)"
        )
    lost, _, final = _finite_buffer_kernel(
        x, capacity, buffer_size, want_workload=False
    )
    arrived = np.array([float(row.sum()) for row in x])
    return FiniteBufferBatchResult(
        lost_cells=lost, arrived_cells=arrived, final_workload=final
    )


def _busy_period_lengths(busy: np.ndarray) -> np.ndarray:
    """Lengths (frames) of maximal runs of True in a boolean array."""
    padded = np.concatenate(([False], busy, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    return edges[1::2] - edges[::2]


def _record_run_telemetry(
    x: np.ndarray, lost: np.ndarray, end_workload: np.ndarray
) -> None:
    """Telemetry for one finite-buffer run (only called when enabled).

    Busy periods are maximal runs of frames ending with a non-empty
    buffer — for heavy-tailed inputs their length distribution is the
    quantity that controls estimator variance.
    """
    _metrics.add("frames_simulated", int(x.size))
    _metrics.add("cells_arrived", float(x.sum()))
    _metrics.add("cells_lost", float(lost.sum()))
    _metrics.add("loss_frames", int(np.count_nonzero(lost)))
    lengths = _busy_period_lengths(end_workload > 0.0)
    if lengths.size:
        _metrics.observe_many("busy_period_frames", lengths)


@dataclass(frozen=True)
class InfiniteBufferResult:
    """Outcome of an infinite-buffer run (workload only, no loss)."""

    workload: np.ndarray

    def overflow_probability(self, thresholds: np.ndarray) -> np.ndarray:
        """Empirical ``P(W > B)`` at each threshold (stationary fraction)."""
        t = np.atleast_1d(np.asarray(thresholds, dtype=float))
        w_sorted = np.sort(self.workload)
        n = w_sorted.shape[0]
        exceed = n - np.searchsorted(w_sorted, t, side="right")
        return exceed / n


def simulate_infinite_buffer(
    arrivals: np.ndarray, capacity: float
) -> InfiniteBufferResult:
    """Exact infinite-buffer workload via the reflection identity.

    ``W_{n+1} = max(W_n + X_n - C, 0)`` started empty equals
    ``S_{n+1} - min_{0 <= k <= n+1} S_k`` with S the centered cumulative
    sum — one cumsum and one running minimum, no Python loop.
    Returned workloads are at frame starts (W_0 = 0 included).
    """
    check_positive(capacity, "capacity")
    x = np.asarray(arrivals, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise SimulationError("arrivals must be a non-empty 1-D array")
    if _spans._ENABLED:
        _metrics.add("frames_simulated", int(x.size))
        _metrics.add("cells_arrived", float(x.sum()))
    s = np.concatenate(([0.0], np.cumsum(x - capacity)))
    running_min = np.minimum.accumulate(s)
    return InfiniteBufferResult(workload=s - running_min)


def simulate_infinite_buffer_batch(
    arrivals: np.ndarray, capacity: float
) -> np.ndarray:
    """Reflection-identity workloads across a replication axis.

    ``arrivals`` is ``(R, n_frames)``; returns the ``(R, n_frames+1)``
    frame-start workload matrix (``W_0 = 0`` included).  Row ``i`` is
    bit-identical to ``simulate_infinite_buffer(arrivals[i], ...)``.
    """
    check_positive(capacity, "capacity")
    x = np.ascontiguousarray(arrivals, dtype=float)
    if x.ndim != 2 or x.shape[0] == 0 or x.shape[1] == 0:
        raise SimulationError(
            "arrivals must be a non-empty 2-D array "
            "(replications x frames)"
        )
    if _spans._ENABLED:
        _metrics.add("frames_simulated", int(x.size))
        _metrics.add("cells_arrived", float(x.sum()))
    s = np.concatenate(
        (np.zeros((x.shape[0], 1)), np.cumsum(x - capacity, axis=1)),
        axis=1,
    )
    return s - np.minimum.accumulate(s, axis=1)
