"""Exact finite-buffer analysis of Markov-modulated arrivals.

The paper ends Section 5.5 with an open question: the Bahadur-Rao
asymptotic (an *infinite-buffer overflow* estimate) sits about two
orders of magnitude above the *finite-buffer cell loss rate* measured
by simulation.  For Markov-modulated sources the finite-buffer system
is itself a Markov chain, so for small numbers of sources the CLR can
be computed *exactly* — no asymptotics, no sampling noise — and the
gap quantified precisely.

Model: a discrete-time Markov chain with states ``j`` (transition
matrix P) emitting ``a_j`` cells in a frame spent in state ``j``.  The
joint (workload, state) chain evolves as

    ``W' = min(max(W + a_{J'} - C, 0), B)``,   J' ~ P[J, .]

The workload is discretized on a uniform grid; off-grid landings are
split between neighbouring levels in proportion (preserving the mean —
a first-order-accurate discretization whose CLR converges as the grid
refines).  The stationary law is found by power iteration, and

    ``CLR = E[overflow] / E[arrivals]``.

A :class:`MarkovArrivalChain` can be built from any DAR(1) model by
quantile-discretizing its marginal (:meth:`from_dar1`) and small
superpositions are available through the Kronecker product
(:meth:`superpose`) — enough to validate the asymptotics and the
simulator against ground truth for one to three sources.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np
from scipy import stats

from repro.exceptions import ConvergenceError, ParameterError, StabilityError
from repro.models.dar import DARModel
from repro.utils.validation import check_integer, check_positive


@dataclass(frozen=True)
class MarkovArrivalChain:
    """A discrete-time Markov-modulated frame-arrival process."""

    transition: np.ndarray
    arrivals: np.ndarray

    def __post_init__(self) -> None:
        p = np.asarray(self.transition, dtype=float)
        a = np.asarray(self.arrivals, dtype=float)
        if p.ndim != 2 or p.shape[0] != p.shape[1]:
            raise ParameterError("transition must be square")
        if a.shape != (p.shape[0],):
            raise ParameterError(
                f"arrivals shape {a.shape} does not match {p.shape[0]} states"
            )
        if np.any(p < -1e-12) or not np.allclose(p.sum(axis=1), 1.0):
            raise ParameterError("transition rows must be distributions")
        object.__setattr__(self, "transition", p)
        object.__setattr__(self, "arrivals", a)

    @property
    def n_states(self) -> int:
        return int(self.arrivals.shape[0])

    def stationary_distribution(self) -> np.ndarray:
        """Stationary law of the modulating chain (left eigenvector)."""
        values, vectors = np.linalg.eig(self.transition.T)
        index = int(np.argmin(np.abs(values - 1.0)))
        pi = np.real(vectors[:, index])
        pi = np.abs(pi)
        return pi / pi.sum()

    @property
    def mean_arrival(self) -> float:
        """Stationary mean cells/frame."""
        return float(np.dot(self.stationary_distribution(), self.arrivals))

    @classmethod
    def from_dar1(cls, model: DARModel, n_bins: int = 21) -> "MarkovArrivalChain":
        """Quantile-discretize a DAR(1) model into a finite chain.

        The Gaussian marginal is split into ``n_bins`` equal-probability
        bins represented by their conditional means (so the chain's
        mean matches the model's exactly); DAR(1) dynamics give
        ``P = rho I + (1 - rho) * 1 pi^T`` with uniform pi.
        """
        if model.order != 1:
            raise ParameterError("from_dar1 requires a DAR(1) model")
        n_bins = check_integer(n_bins, "n_bins", minimum=2)
        edges = stats.norm.ppf(np.linspace(0.0, 1.0, n_bins + 1))
        # Conditional means of a standard normal on each bin:
        # E[Z | a < Z < b] = (phi(a) - phi(b)) / (Phi(b) - Phi(a)).
        pdf = stats.norm.pdf(edges)
        bin_prob = 1.0 / n_bins
        z_means = (pdf[:-1] - pdf[1:]) / bin_prob
        values = model.mean + np.sqrt(model.variance) * z_means
        transition = model.rho * np.eye(n_bins) + (
            1.0 - model.rho
        ) * np.full((n_bins, n_bins), bin_prob)
        return cls(transition=transition, arrivals=values)

    def superpose(self, other: "MarkovArrivalChain") -> "MarkovArrivalChain":
        """Product chain of two independent sources (states multiply)."""
        transition = np.kron(self.transition, other.transition)
        arrivals = (
            self.arrivals[:, None] + other.arrivals[None, :]
        ).reshape(-1)
        return MarkovArrivalChain(transition=transition, arrivals=arrivals)

    def self_superpose(self, n_sources: int) -> "MarkovArrivalChain":
        """Superposition of ``n_sources`` i.i.d. copies (state space K^n)."""
        n_sources = check_integer(n_sources, "n_sources", minimum=1)
        chain = self
        for _ in range(n_sources - 1):
            chain = chain.superpose(self)
        return chain


@dataclass(frozen=True)
class ExactCLRResult:
    """Exact stationary loss analysis of the finite-buffer chain."""

    clr: float
    mean_workload: float
    overflow_per_frame: float
    mean_arrival: float
    iterations: int

    @property
    def log10_clr(self) -> float:
        return float(np.log10(self.clr)) if self.clr > 0 else -np.inf


def exact_clr(
    chain: MarkovArrivalChain,
    capacity: float,
    buffer_cells: float,
    *,
    n_levels: int = 401,
    tol: float = 1e-12,
    max_iterations: int = 200_000,
) -> ExactCLRResult:
    """Stationary CLR of the (workload x state) chain by power iteration.

    Parameters
    ----------
    chain:
        The Markov-modulated arrival process (total, all sources).
    capacity:
        Service C in cells/frame; must exceed the chain's mean rate.
    buffer_cells:
        Buffer B in cells; B = 0 (bufferless) is allowed.
    n_levels:
        Workload grid resolution; the discretization error in the CLR
        decreases roughly linearly in the grid spacing.
    """
    check_positive(capacity, "capacity")
    check_positive(buffer_cells, "buffer_cells", strict=False)
    n_levels = check_integer(n_levels, "n_levels", minimum=2)
    if chain.mean_arrival >= capacity:
        raise StabilityError(
            f"mean arrival {chain.mean_arrival:.6g} must be below "
            f"capacity {capacity:.6g}"
        )

    k = chain.n_states
    mean_arrival = chain.mean_arrival

    if buffer_cells == 0.0:
        # Bufferless: the workload is identically zero, so only the
        # stationary state law matters.
        pi_states = chain.stationary_distribution()
        overflow_per_frame = float(
            np.dot(pi_states, np.maximum(chain.arrivals - capacity, 0.0))
        )
        return ExactCLRResult(
            clr=overflow_per_frame / mean_arrival,
            mean_workload=0.0,
            overflow_per_frame=overflow_per_frame,
            mean_arrival=mean_arrival,
            iterations=0,
        )

    levels = np.linspace(0.0, buffer_cells, n_levels)
    spacing = levels[1] - levels[0]

    # Precompute, per target state j', the landing interpolation of
    # every workload level: lower indices and upper-cell weights.
    landing = levels[None, :] + chain.arrivals[:, None] - capacity
    overflow = np.maximum(landing - buffer_cells, 0.0)  # (K, L)
    landing = np.clip(landing, 0.0, buffer_cells)
    position = landing / spacing
    lo = np.floor(position).astype(np.int64)
    np.clip(lo, 0, n_levels - 2, out=lo)
    w_hi = position - lo

    # Power iteration on pi(w, j), stored as an (L, K) matrix.
    pi = np.full((n_levels, k), 1.0 / (n_levels * k))
    transition = chain.transition
    delta = np.inf
    for iteration in range(1, max_iterations + 1):
        mass = pi @ transition  # (L, K): mass arriving to state j'
        new = np.zeros_like(pi)
        for j in range(k):
            column = mass[:, j]
            np.add.at(new[:, j], lo[j], column * (1.0 - w_hi[j]))
            np.add.at(new[:, j], lo[j] + 1, column * w_hi[j])
        delta = float(np.abs(new - pi).sum())
        pi = new
        if delta < tol:
            break
    else:
        raise ConvergenceError(
            f"power iteration did not converge in {max_iterations} steps",
            last_value=delta,
        )

    mass = pi @ transition
    overflow_per_frame = float(np.sum(mass.T * overflow))
    mean_workload = float((pi.sum(axis=1) * levels).sum())
    return ExactCLRResult(
        clr=overflow_per_frame / mean_arrival,
        mean_workload=mean_workload,
        overflow_per_frame=overflow_per_frame,
        mean_arrival=mean_arrival,
        iterations=iteration,
    )
