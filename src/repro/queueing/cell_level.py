"""Cell-granularity ATM multiplexer — validation of the fluid recursion.

The frame-level recursion of :mod:`repro.queueing.workload` treats the
within-frame dynamics as fluid.  The paper's actual setting is
discrete: each source emits an integer number of cells *equispaced
over the frame duration* (deterministic smoothing), and the link
serves one 53-byte cell per slot of length ``T_s / C``.  This module
simulates exactly that — an event-driven queue at individual-cell
granularity — so tests can bound the fluid approximation error.

Complexity is O(total cells log total cells) for event generation and
sorting plus a per-cell Python loop; it is a *validation* tool meant
for short runs, not for the paper-scale experiments (which the fluid
simulator handles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.validation import check_integer


def deterministic_smoothing_times(frame_arrivals: np.ndarray) -> np.ndarray:
    """Arrival instants (in frame units) for equispaced cells.

    ``frame_arrivals`` holds one source's integer cells per frame; cell
    j of frame n arrives at ``n + j / X_n`` (j = 0..X_n-1) — the
    paper's deterministic smoothing with frame-aligned sources.
    Returns a sorted 1-D array of times.
    """
    counts = np.asarray(frame_arrivals)
    if counts.ndim != 1:
        raise SimulationError("frame_arrivals must be 1-D")
    if np.any(counts < 0):
        raise SimulationError("frame_arrivals must be non-negative")
    counts = counts.astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0)
    frame_index = np.repeat(np.arange(counts.shape[0]), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total) - np.repeat(offsets, counts)
    return frame_index + within / np.repeat(counts, counts)


@dataclass(frozen=True)
class CellLevelResult:
    """Outcome of a cell-granularity run."""

    lost_cells: int
    arrived_cells: int

    @property
    def clr(self) -> float:
        if self.arrived_cells == 0:
            raise SimulationError("no cells arrived; CLR undefined")
        return self.lost_cells / self.arrived_cells


def simulate_cell_level(
    per_source_frames: np.ndarray,
    capacity: int,
    buffer_cells: int,
) -> CellLevelResult:
    """Slotted simulation of N frame-aligned smoothed sources.

    Parameters
    ----------
    per_source_frames:
        Integer array of shape (n_frames, n_sources): cells per frame
        per source.
    capacity:
        Service C in cells/frame; the link serves at slot boundaries
        ``(k+1)/C`` (frame units), one cell per slot while backlogged.
    buffer_cells:
        Waiting room in cells (the cell in service is extra); an
        arriving cell finding ``buffer_cells + 1`` cells present is
        lost.  ``buffer_cells = 0`` is the bufferless multiplexer.
    """
    capacity = check_integer(capacity, "capacity", minimum=1)
    buffer_cells = check_integer(buffer_cells, "buffer_cells", minimum=0)
    frames = np.asarray(per_source_frames)
    if frames.ndim == 1:
        frames = frames[:, None]
    if frames.ndim != 2 or frames.size == 0:
        raise SimulationError("per_source_frames must be a non-empty 2-D array")

    times = np.sort(
        np.concatenate(
            [
                deterministic_smoothing_times(frames[:, s])
                for s in range(frames.shape[1])
            ]
        )
    )
    arrived = int(times.shape[0])
    if arrived == 0:
        return CellLevelResult(lost_cells=0, arrived_cells=0)

    # Slot boundaries at (k+1)/C; between consecutive arrivals the
    # queue drains by the number of boundaries passed (exact because
    # no arrivals occur in the gap).
    lost = 0
    queue = 0
    # Count of slot boundaries <= t is floor(t * C) (boundary k at (k+1)/C
    # means boundaries in (0, t] number floor(t*C) when t*C is not integer;
    # serve cells that complete strictly before or at the arrival).
    slots_seen = 0
    scaled = times * capacity
    for t_scaled in scaled:
        slots_now = int(math.floor(t_scaled))
        if slots_now > slots_seen:
            queue = max(queue - (slots_now - slots_seen), 0)
            slots_seen = slots_now
        if queue >= buffer_cells + 1:
            lost += 1
        else:
            queue += 1
    return CellLevelResult(lost_cells=lost, arrived_cells=arrived)
