"""Cell-granularity ATM multiplexer — validation of the fluid recursion.

The frame-level recursion of :mod:`repro.queueing.workload` treats the
within-frame dynamics as fluid.  The paper's actual setting is
discrete: each source emits an integer number of cells *equispaced
over the frame duration* (deterministic smoothing), and the link
serves one 53-byte cell per slot of length ``T_s / C``.  This module
simulates exactly that — an event-driven queue at individual-cell
granularity — so tests can bound the fluid approximation error.

Complexity is O(total cells log total cells) for event generation and
sorting; the drain/loss recursion itself is evaluated in numpy chunks
(see :func:`simulate_cell_level`), falling back to a per-cell scan
only inside chunks that actually overflow the buffer, so loss-free
stretches — the overwhelmingly common case at engineered loads — cost
vector operations instead of a Python loop per cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.validation import check_integer


def deterministic_smoothing_times(frame_arrivals: np.ndarray) -> np.ndarray:
    """Arrival instants (in frame units) for equispaced cells.

    ``frame_arrivals`` holds one source's integer cells per frame; cell
    j of frame n arrives at ``n + j / X_n`` (j = 0..X_n-1) — the
    paper's deterministic smoothing with frame-aligned sources.
    Returns a sorted 1-D array of times.
    """
    counts = np.asarray(frame_arrivals)
    if counts.ndim != 1:
        raise SimulationError("frame_arrivals must be 1-D")
    if np.any(counts < 0):
        raise SimulationError("frame_arrivals must be non-negative")
    counts = counts.astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0)
    frame_index = np.repeat(np.arange(counts.shape[0]), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total) - np.repeat(offsets, counts)
    return frame_index + within / np.repeat(counts, counts)


@dataclass(frozen=True)
class CellLevelResult:
    """Outcome of a cell-granularity run."""

    lost_cells: int
    arrived_cells: int

    @property
    def clr(self) -> float:
        if self.arrived_cells == 0:
            raise SimulationError("no cells arrived; CLR undefined")
        return self.lost_cells / self.arrived_cells


#: Arrivals per vectorized chunk of the drain/loss scan.
_SCAN_CHUNK = 8192


def _drain_counts(times: np.ndarray, capacity: int) -> np.ndarray:
    """Per-arrival service opportunities since the previous arrival.

    Slot boundaries sit at ``(k+1)/C`` (frame units); the number of
    boundaries at or before time ``t`` is ``floor(t * C)``, so the
    queue drains by the *difference* of that count between consecutive
    arrivals (exact: no arrivals occur inside the gap).
    """
    slots = np.floor(times * capacity).astype(np.int64)
    return np.diff(slots, prepend=0)


def _scan_chunk_lossy(drains: np.ndarray, queue: int, cap: int):
    """Exact per-cell scan of one chunk that may overflow.

    Returns (lost_in_chunk, queue_after_chunk).  Only reached for
    chunks whose loss-free upper bound exceeds the buffer, so the
    Python loop runs over congested stretches alone.
    """
    lost = 0
    for d in drains:
        if d:
            queue = max(queue - int(d), 0)
        if queue >= cap:
            lost += 1
        else:
            queue += 1
    return lost, queue


def simulate_cell_level(
    per_source_frames: np.ndarray,
    capacity: int,
    buffer_cells: int,
) -> CellLevelResult:
    """Slotted simulation of N frame-aligned smoothed sources.

    Parameters
    ----------
    per_source_frames:
        Integer array of shape (n_frames, n_sources): cells per frame
        per source.
    capacity:
        Service C in cells/frame; the link serves at slot boundaries
        ``(k+1)/C`` (frame units), one cell per slot while backlogged.
    buffer_cells:
        Waiting room in cells (the cell in service is extra); an
        arriving cell finding ``buffer_cells + 1`` cells present is
        lost.  ``buffer_cells = 0`` is the bufferless multiplexer.

    The drain/loss recursion is evaluated in chunks: for each chunk
    the *loss-free* (infinite-buffer) queue trajectory from the
    entering state is computed vectorially via the Lindley unrolling

        ``u_i = (i - D_i) + max(q0, 1 + max_{j<=i}(D_j - j))``

    (``D`` the running drain count).  The finite-buffer queue is
    bounded above by ``u`` and coincides with it while ``u`` stays
    within the buffer, so a chunk whose ``max(u)`` fits loses nothing
    and advances in O(chunk) numpy work; only chunks that would
    overflow fall back to the exact per-cell scan.  Counts are
    bit-identical to the plain loop for every input.
    """
    capacity = check_integer(capacity, "capacity", minimum=1)
    buffer_cells = check_integer(buffer_cells, "buffer_cells", minimum=0)
    frames = np.asarray(per_source_frames)
    if frames.ndim == 1:
        frames = frames[:, None]
    if frames.ndim != 2 or frames.size == 0:
        raise SimulationError("per_source_frames must be a non-empty 2-D array")

    times = np.sort(
        np.concatenate(
            [
                deterministic_smoothing_times(frames[:, s])
                for s in range(frames.shape[1])
            ]
        )
    )
    arrived = int(times.shape[0])
    if arrived == 0:
        return CellLevelResult(lost_cells=0, arrived_cells=0)

    drains = _drain_counts(times, capacity)
    cap = buffer_cells + 1
    lost = 0
    queue = 0
    for start in range(0, arrived, _SCAN_CHUNK):
        chunk = drains[start : start + _SCAN_CHUNK]
        m = chunk.shape[0]
        running = np.cumsum(chunk)
        # Loss-free after-arrival queue u_i from entering state `queue`:
        # renewal at the floor-at-zero is captured by the running max.
        positions = np.arange(1, m + 1)
        net = positions - running  # i - D_i
        floor_term = np.maximum.accumulate(running - positions) + 1
        u = net + np.maximum(queue, floor_term)
        if u.max() <= cap:
            queue = int(u[-1])
            continue
        chunk_lost, queue = _scan_chunk_lossy(chunk, queue, cap)
        lost += chunk_lost
    return CellLevelResult(lost_cells=lost, arrived_cells=arrived)


def simulate_cell_level_batch(
    per_replication_frames,
    capacity: int,
    buffer_cells: int,
) -> list:
    """Cell-granularity runs for many replications in one 2-D scan.

    ``per_replication_frames`` is a sequence of integer frame matrices
    (each as accepted by :func:`simulate_cell_level`; replications may
    have different cell counts).  Ragged drain sequences are padded on
    the right with ``buffer_cells + 2`` — a pad slot first drains the
    queue to zero and then re-adds one cell, so it can never record a
    loss — and the chunked drain/loss scan runs across the replication
    axis.  All arithmetic is integer, so every replication's counts
    are bit-identical to running it alone through
    :func:`simulate_cell_level`.

    Returns a list of :class:`CellLevelResult`, one per replication.
    """
    capacity = check_integer(capacity, "capacity", minimum=1)
    buffer_cells = check_integer(buffer_cells, "buffer_cells", minimum=0)
    drains_rows = []
    for frames in per_replication_frames:
        frames = np.asarray(frames)
        if frames.ndim == 1:
            frames = frames[:, None]
        if frames.ndim != 2 or frames.size == 0:
            raise SimulationError(
                "each replication must be a non-empty 2-D frame array"
            )
        times = np.sort(
            np.concatenate(
                [
                    deterministic_smoothing_times(frames[:, s])
                    for s in range(frames.shape[1])
                ]
            )
        )
        drains_rows.append(_drain_counts(times, capacity))
    if not drains_rows:
        raise SimulationError("need at least one replication")

    lengths = [row.shape[0] for row in drains_rows]
    width = max(lengths)
    cap = buffer_cells + 1
    if width == 0:
        return [CellLevelResult(0, 0) for _ in drains_rows]
    padded = np.full((len(drains_rows), width), cap + 1, dtype=np.int64)
    for i, row in enumerate(drains_rows):
        padded[i, : row.shape[0]] = row

    lost = np.zeros(len(drains_rows), dtype=np.int64)
    queue = np.zeros(len(drains_rows), dtype=np.int64)
    positions_full = np.arange(1, width + 1)
    for start in range(0, width, _SCAN_CHUNK):
        chunk = padded[:, start : start + _SCAN_CHUNK]
        m = chunk.shape[1]
        running = np.cumsum(chunk, axis=1)
        positions = positions_full[:m]
        net = positions[np.newaxis, :] - running
        floor_term = (
            np.maximum.accumulate(running - positions[np.newaxis, :], axis=1)
            + 1
        )
        u = net + np.maximum(queue[:, np.newaxis], floor_term)
        fast = u.max(axis=1) <= cap
        queue = np.where(fast, u[:, -1], queue)
        for i in np.flatnonzero(~fast):
            chunk_lost, q = _scan_chunk_lossy(chunk[i], int(queue[i]), cap)
            lost[i] += chunk_lost
            queue[i] = q
    return [
        CellLevelResult(lost_cells=int(lost[i]), arrived_cells=int(n))
        for i, n in enumerate(lengths)
    ]
