"""Batch-means confidence intervals for single long simulation runs.

The paper uses independent replications (60 x 500k frames) because
heavy-tailed ON/OFF times make within-run estimates treacherous.  The
batch-means method is the standard alternative when one long run is
cheaper than many starts: split the run into contiguous batches, treat
batch averages as approximately i.i.d., and apply normal theory.

For LRD input the usual caveat bites hard — batch means decorrelate
only like (batch length)^{2H-2} — so the implementation also reports
the lag-1 correlation between batch means.  A large value is the
method telling you the batches are too short: exactly the
slow-convergence phenomenon that motivated the paper's replication
design, made visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import SimulationError
from repro.utils.validation import check_in_range, check_integer


@dataclass(frozen=True)
class BatchMeansEstimate:
    """A batch-means summary of one long run."""

    mean: float
    half_width: float
    n_batches: int
    batch_frames: int
    batch_lag1: float
    confidence: float

    @property
    def interval(self) -> tuple:
        return (self.mean - self.half_width, self.mean + self.half_width)

    @property
    def batches_look_independent(self) -> bool:
        """Heuristic check that the batch length was long enough.

        Lag-1 correlation of batch means below ~0.2 is the customary
        rule of thumb; LRD input typically fails it unless batches are
        very long.
        """
        return abs(self.batch_lag1) < 0.2


def batch_means(
    per_frame_values: np.ndarray,
    n_batches: int = 20,
    *,
    confidence: float = 0.95,
) -> BatchMeansEstimate:
    """Batch-means CI for the mean of a per-frame statistic.

    Parameters
    ----------
    per_frame_values:
        E.g. per-frame lost cells or workload from one long run.
    n_batches:
        Number of contiguous batches (10-30 is conventional).
    """
    x = np.asarray(per_frame_values, dtype=float)
    if x.ndim != 1:
        raise SimulationError("per_frame_values must be 1-D")
    n_batches = check_integer(n_batches, "n_batches", minimum=2)
    check_in_range(confidence, "confidence", 0.0, 1.0)
    batch_frames = x.shape[0] // n_batches
    if batch_frames < 1:
        raise SimulationError(
            f"run too short: {x.shape[0]} frames for {n_batches} batches"
        )
    trimmed = x[: batch_frames * n_batches]
    means = trimmed.reshape(n_batches, batch_frames).mean(axis=1)
    return _summarize(means, batch_frames, confidence)


def _summarize(
    means: np.ndarray, batch_frames: int, confidence: float
) -> BatchMeansEstimate:
    n_batches = means.shape[0]
    grand_mean = float(means.mean())
    std_error = float(means.std(ddof=1) / math.sqrt(n_batches))
    quantile = float(stats.t.ppf(0.5 + confidence / 2.0, df=n_batches - 1))
    centered = means - grand_mean
    denominator = float(np.dot(centered, centered))
    if denominator > 0:
        lag1 = float(np.dot(centered[:-1], centered[1:]) / denominator)
    else:
        lag1 = 0.0
    return BatchMeansEstimate(
        mean=grand_mean,
        half_width=quantile * std_error,
        n_batches=n_batches,
        batch_frames=batch_frames,
        batch_lag1=lag1,
        confidence=confidence,
    )


def batch_means_clr(
    lost_cells: np.ndarray,
    arrived_cells: np.ndarray,
    n_batches: int = 20,
    *,
    confidence: float = 0.95,
) -> BatchMeansEstimate:
    """Batch-means CI for a cell loss rate (ratio estimator).

    Batches the per-frame loss/arrival pair jointly and forms
    per-batch CLRs, so the estimate is a proper ratio-of-sums within
    each batch.
    """
    lost = np.asarray(lost_cells, dtype=float)
    arrived = np.asarray(arrived_cells, dtype=float)
    if lost.shape != arrived.shape or lost.ndim != 1:
        raise SimulationError("lost/arrived must be equal-length 1-D arrays")
    n_batches = check_integer(n_batches, "n_batches", minimum=2)
    batch_frames = lost.shape[0] // n_batches
    if batch_frames < 1:
        raise SimulationError("run too short for the requested batches")
    shape = (n_batches, batch_frames)
    lost_batches = lost[: batch_frames * n_batches].reshape(shape).sum(axis=1)
    arrived_batches = (
        arrived[: batch_frames * n_batches].reshape(shape).sum(axis=1)
    )
    if np.any(arrived_batches <= 0):
        raise SimulationError("a batch received no cells; enlarge batches")
    check_in_range(confidence, "confidence", 0.0, 1.0)
    ratios = lost_batches / arrived_batches
    return _summarize(ratios, batch_frames, confidence)
