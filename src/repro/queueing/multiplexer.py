"""The ATM multiplexer: N video sources into one buffered link.

Ties a :class:`~repro.models.base.TrafficModel` to the workload
recursions of :mod:`repro.queueing.workload` with the paper's
conventions: N frame-aligned homogeneous sources, total service
``C = N c`` cells/frame, total buffer ``B`` cells (equivalently a
maximum-delay budget), deterministic smoothing within frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ParameterError
from repro.models.base import TrafficModel
from repro.obs.spans import span
from repro.queueing.workload import (
    FiniteBufferBatchResult,
    FiniteBufferResult,
    InfiniteBufferResult,
    simulate_finite_buffer,
    simulate_finite_buffer_batch,
    simulate_infinite_buffer,
)
from repro.utils.rng import RngLike
from repro.utils.units import buffer_cells_to_delay, delay_to_buffer_cells
from repro.utils.validation import (
    check_integer,
    check_nonnegative_array,
    check_positive,
    check_simulation_health,
)


class ATMMultiplexer:
    """A buffered FIFO multiplexer of N homogeneous VBR video sources.

    Parameters
    ----------
    model:
        Per-source frame-size model.
    n_sources:
        Number N of multiplexed sources.
    c_per_source:
        Bandwidth per source c (cells/frame); total service C = N c.
    buffer_cells / max_delay_seconds:
        Exactly one of these fixes the total buffer B: directly in
        cells, or through the delay budget B = delay * C / T_s.
    """

    def __init__(
        self,
        model: TrafficModel,
        n_sources: int,
        c_per_source: float,
        *,
        buffer_cells: Optional[float] = None,
        max_delay_seconds: Optional[float] = None,
    ):
        self.model = model
        self.n_sources = check_integer(n_sources, "n_sources", minimum=1)
        self.c_per_source = check_positive(c_per_source, "c_per_source")
        if (buffer_cells is None) == (max_delay_seconds is None):
            raise ParameterError(
                "specify exactly one of buffer_cells / max_delay_seconds"
            )
        if buffer_cells is None:
            buffer_cells = delay_to_buffer_cells(
                max_delay_seconds, self.capacity, model.frame_duration
            )
        self.buffer_cells = check_positive(
            float(buffer_cells), "buffer_cells", strict=False
        )

    @property
    def capacity(self) -> float:
        """Total service rate C = N c (cells/frame)."""
        return self.n_sources * self.c_per_source

    @property
    def max_delay_seconds(self) -> float:
        """The delay bound implied by the buffer: B T_s / C."""
        return buffer_cells_to_delay(
            self.buffer_cells, self.capacity, self.model.frame_duration
        )

    @property
    def utilization(self) -> float:
        """Offered load over capacity, N mu / C = mu / c."""
        return self.model.mean / self.c_per_source

    # -- simulation ---------------------------------------------------------------

    def simulate_clr(
        self, n_frames: int, rng: RngLike = None
    ) -> FiniteBufferResult:
        """One finite-buffer replication; ``.clr`` gives the loss rate."""
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        with span("mux.simulate_clr", n_frames=n_frames):
            arrivals = self.model.sample_aggregate(
                n_frames, self.n_sources, rng
            )
            result = simulate_finite_buffer(
                arrivals, self.capacity, self.buffer_cells
            )
            # A NaN sampled by the model propagates through the fluid
            # recursion into every pooled estimate downstream; fail the
            # replication here, where the supervisor can retry it.
            check_simulation_health(
                result.lost_cells,
                result.arrived_cells,
                context="simulate_clr",
            )
            return result

    def simulate_clr_batch(
        self, n_frames: int, generators
    ) -> FiniteBufferBatchResult:
        """Many finite-buffer replications in one 2-D kernel pass.

        ``generators`` supplies one RNG stream per replication; row
        ``i`` samples from ``generators[i]`` and is bit-identical to
        ``simulate_clr(n_frames, generators[i])`` — same sampling,
        same kernel, same row-wise summation — so batched workers pool
        to exactly the serial result.
        """
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        generators = list(generators)
        with span(
            "mux.simulate_clr_batch",
            n_frames=n_frames,
            n_replications=len(generators),
        ):
            arrivals = np.stack(
                [
                    self.model.sample_aggregate(
                        n_frames, self.n_sources, generator
                    )
                    for generator in generators
                ]
            )
            result = simulate_finite_buffer_batch(
                arrivals, self.capacity, self.buffer_cells
            )
            for i in range(arrivals.shape[0]):
                check_simulation_health(
                    result.lost_cells[i],
                    result.arrived_cells[i],
                    context="simulate_clr",
                )
            return result

    def simulate_workload(
        self, n_frames: int, rng: RngLike = None
    ) -> InfiniteBufferResult:
        """One infinite-buffer replication (for BOP estimation).

        The configured buffer size plays no role here; use
        ``.overflow_probability(thresholds)`` on the result.
        """
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        with span("mux.simulate_workload", n_frames=n_frames):
            arrivals = self.model.sample_aggregate(
                n_frames, self.n_sources, rng
            )
            return simulate_infinite_buffer(arrivals, self.capacity)

    def clr_for_buffers(
        self,
        n_frames: int,
        buffer_values: np.ndarray,
        rng: RngLike = None,
    ) -> np.ndarray:
        """CLR at several buffer sizes from one shared arrival path.

        Reusing the same sample path across buffer sizes is both far
        cheaper and variance-reducing for *curves* (common random
        numbers): the paper's Figs. 8-9 vary only B.
        """
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        buffers = check_nonnegative_array(buffer_values, "buffer_values")
        with span(
            "mux.clr_for_buffers", n_frames=n_frames, n_buffers=buffers.size
        ):
            arrivals = self.model.sample_aggregate(
                n_frames, self.n_sources, rng
            )
            out = np.empty(buffers.size)
            for i, b in enumerate(buffers):
                out[i] = simulate_finite_buffer(
                    arrivals, self.capacity, b
                ).clr
            return out

    def __repr__(self) -> str:
        return (
            f"ATMMultiplexer(N={self.n_sources}, c={self.c_per_source:.6g}, "
            f"B={self.buffer_cells:.6g} cells "
            f"({self.max_delay_seconds * 1e3:.3g} msec), "
            f"utilization={self.utilization:.3f})"
        )
