"""repro.resilience — fault-tolerant replicated simulation.

The paper's estimates rest on 60 replications of half a million frames
per model; at that depth a batch is an operational artifact, not a
loop.  This package gives the replication harness the checkpoint /
retry / deadline discipline production traffic simulators use:

* :mod:`repro.resilience.policy`     — :class:`ResiliencePolicy`
  (retry budget, deadlines, checkpoint location) and the process-wide
  default used by the experiment runner's flags;
* :mod:`repro.resilience.seeding`    — deterministic per-replication,
  per-attempt RNG streams from the SeedSequence spawn tree;
* :mod:`repro.resilience.checkpoint` — append-only JSONL checkpoints
  validated against a run fingerprint;
* :mod:`repro.resilience.engine`     — the supervisor:
  :func:`run_replications` with per-replication fault isolation,
  resume, and deadline-bounded graceful degradation;
* :mod:`repro.resilience.faults`     — deterministic fault injection
  (fail / crash / NaN-poison / hang) for testing every recovery path.

Quickstart::

    from repro.resilience import ResiliencePolicy
    from repro.queueing import replicated_clr

    policy = ResiliencePolicy(max_retries=3,
                              deadline_seconds=3600.0,
                              checkpoint_dir="checkpoints")
    summary = replicated_clr(mux, 500_000, 60, rng=19960826,
                             resilience=policy)
    if summary.degraded:
        print(f"partial pool: {summary.n_failed} replication(s) lost")

See ``docs/ROBUSTNESS.md`` for the checkpoint schema and semantics.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointFile,
    ReplicationRecord,
    fingerprint_digest,
)
from repro.resilience.engine import (
    EngineResult,
    FailureRecord,
    ReplicationOutcome,
    run_replications,
)
from repro.resilience.faults import (
    FaultInjectedModel,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
    inject_faults,
)
from repro.resilience.policy import (
    ResiliencePolicy,
    get_default_policy,
    set_default_policy,
    use_policy,
)
from repro.resilience.seeding import ReplicationSeeder

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointFile",
    "EngineResult",
    "FailureRecord",
    "FaultInjectedModel",
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
    "ReplicationOutcome",
    "ReplicationRecord",
    "ReplicationSeeder",
    "ResiliencePolicy",
    "fingerprint_digest",
    "get_default_policy",
    "inject_faults",
    "run_replications",
    "set_default_policy",
    "use_policy",
]
