"""Per-replication, per-attempt RNG stream bookkeeping.

The retry discipline of the resilience engine only makes statistical
sense if every attempt runs on its own independent stream: re-running
a failed replication on the *same* stream would reproduce the same
sample path (and the same NaN), while drawing "somewhere else" ad hoc
would break reproducibility.  :class:`ReplicationSeeder` solves both
with the ``SeedSequence`` spawn tree:

* attempt 0 of replication ``i`` uses exactly the stream that
  :func:`repro.utils.rng.spawn_generators` would hand the legacy
  (non-resilient) loop — so a fault-free supervised run is
  bit-identical to an unsupervised one;
* retry ``k`` of replication ``i`` spawns the child with spawn key
  ``(i, k - 1)`` from replication ``i``'s own SeedSequence — fully
  determined by ``(i, k)`` and the root entropy, independent of what
  happened to any other replication.

When the caller passes an existing :class:`numpy.random.Generator`
(shared-state semantics, no seed identity), retries spawn children
from that replication's generator via
:func:`~repro.utils.rng.spawn_generators` — which on numpy < 1.25
falls back to seeding from the parent's bit stream.  In that mode
:attr:`entropy` and spawn keys are ``None`` and checkpoints cannot
verify seed identity.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer

__all__ = ["ReplicationSeeder"]


class ReplicationSeeder:
    """Deterministic RNG streams keyed by (replication index, attempt)."""

    def __init__(self, rng: RngLike, n_replications: int):
        self.n_replications = check_integer(
            n_replications, "n_replications", minimum=1
        )
        self._attempts = [0] * self.n_replications
        if isinstance(rng, np.random.Generator):
            self._sequences: Optional[List[np.random.SeedSequence]] = None
            self._generators = spawn_generators(rng, self.n_replications)
            self.entropy: Optional[int] = None
        else:
            root = (
                rng
                if isinstance(rng, np.random.SeedSequence)
                else np.random.SeedSequence(rng)
            )
            self._sequences = root.spawn(self.n_replications)
            self._generators = None
            self.entropy = root.entropy

    @property
    def seedable(self) -> bool:
        """Whether streams are reconstructible from recorded seeds."""
        return self._sequences is not None

    def attempts(self, index: int) -> int:
        """Number of streams handed out so far for replication ``index``."""
        return self._attempts[index]

    def generator(self, index: int) -> np.random.Generator:
        """The next stream for replication ``index``.

        The first call returns the replication's attempt-0 stream; each
        subsequent call (a retry) returns a freshly spawned child.
        """
        index = check_integer(
            index, "index", minimum=0, maximum=self.n_replications - 1
        )
        attempt = self._attempts[index]
        self._attempts[index] = attempt + 1
        if self._sequences is None:
            parent = self._generators[index]
            if attempt == 0:
                return parent
            return spawn_generators(parent, 1)[0]
        sequence = self._sequences[index]
        if attempt == 0:
            return np.random.default_rng(sequence)
        # SeedSequence.spawn tracks its own child counter, so the k-th
        # retry gets spawn key (index, k-1) regardless of interleaving.
        return np.random.default_rng(sequence.spawn(1)[0])

    def adopt_generator(
        self, index: int, generator: np.random.Generator
    ) -> None:
        """Replace replication ``index``'s parent stream (Generator mode).

        A worker process runs the attempt on a *pickled copy* of the
        parent stream, so the supervisor's copy never advances.  In
        Generator mode retries derive from the post-attempt state of
        the failed stream; adopting the worker's returned generator
        restores exactly the state an in-process (serial) attempt
        would have left behind.  No-op in seeded mode, where retries
        derive from the replication's SeedSequence instead.
        """
        if self._generators is not None:
            index = check_integer(
                index, "index", minimum=0, maximum=self.n_replications - 1
            )
            self._generators[index] = generator

    def spawn_key(self, index: int) -> Optional[Tuple[int, ...]]:
        """Spawn key of replication ``index``'s SeedSequence, if seeded."""
        if self._sequences is None:
            return None
        return tuple(int(k) for k in self._sequences[index].spawn_key)
