"""The fault-tolerant replication supervisor.

:func:`run_replications` runs ``n_replications`` of a caller-supplied
task under the paper's replication discipline (Section 5.5: pooled
estimates over independent seeded replications) with three layers of
protection a production batch needs:

* **per-replication isolation** — a replication that raises a library
  error (:class:`~repro.exceptions.ReproError`), a floating-point trap,
  or fails the :func:`~repro.utils.validation.check_simulation_health`
  guard is retried on a freshly spawned child RNG stream, up to the
  policy's budget; other exceptions (bugs, ``KeyboardInterrupt``)
  propagate untouched;
* **checkpoint/resume** — completed replications append to a JSONL
  checkpoint validated against the run fingerprint, so an interrupted
  batch resumes exactly where it stopped and reproduces the pooled
  estimate bit for bit;
* **deadline-bounded graceful degradation** — past the policy
  deadline (or once a replication exhausts its retries) the engine
  stops launching work and returns the completed subset flagged
  ``degraded`` with a :class:`~repro.exceptions.DegradedResultWarning`,
  raising only when *nothing* completed.

With an execution backend (see :mod:`repro.parallel`) the attempts run
across worker processes while all supervision — retry decisions,
checkpoint appends, telemetry export — stays in the parent: workers
never touch the JSONL file, and completions flush to it in strict
replication-index order, so the checkpoint (and hence the pooled
estimate after a resume) is bit-identical to a serial run regardless
of completion order.  A crash loses only completions still waiting on
a smaller index; they are recomputed deterministically on resume.

With ``replication_timeout_seconds`` set on the policy, a parallel
attempt that outlives its wall-clock budget is declared hung: the
attempt is fenced off (its eventual result — and telemetry — is
discarded on arrival) and a fresh attempt dispatched on the next
child stream, so a hang is handled exactly like any other retryable
failure (``ReplicationTimeout`` in the failure log).

Telemetry counters (no-ops unless :mod:`repro.obs` is enabled):
``replications_completed``, ``replications_retried``,
``replications_failed``, ``replications_degraded``,
``replications_timed_out``, ``replications_stale_results``,
``checkpoint_resumed``.  The failure/degradation counters feed the
default SLO targets of :mod:`repro.obs.slo`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

import numpy as np

from repro.exceptions import (
    RETRYABLE_EXCEPTIONS,
    DegradedResultWarning,
    SimulationError,
)
from repro.obs import metrics as _metrics
from repro.obs import progress as _progress
from repro.obs import spans as _spans
from repro.obs.spans import span
from repro.parallel.backends import Backend
from repro.parallel.worker import (
    WorkerPayload,
    merge_result_telemetry,
)
from repro.resilience.checkpoint import (
    CheckpointFile,
    ReplicationRecord,
    fingerprint_digest,
)
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.seeding import ReplicationSeeder
from repro.utils.replication_context import replication_attempt
from repro.utils.rng import RngLike
from repro.utils.validation import check_integer, check_simulation_health

__all__ = [
    "EngineResult",
    "FailureRecord",
    "RETRYABLE_EXCEPTIONS",
    "ReplicationOutcome",
    "ReplicationTask",
    "run_replications",
]

#: A replication body: ``(index, generator) -> (lost, arrived)`` where
#: ``lost`` is a scalar or per-buffer vector of lost cells and
#: ``arrived`` the total offered cells.
ReplicationTask = Callable[
    [int, np.random.Generator], Tuple[Union[float, np.ndarray], float]
]


@dataclass(frozen=True)
class FailureRecord:
    """One failed attempt: which replication, which try, what broke."""

    index: int
    attempt: int
    kind: str
    message: str
    elapsed_seconds: float


@dataclass(frozen=True)
class ReplicationOutcome:
    """One completed replication's contribution to the pooled estimate."""

    index: int
    lost: Union[float, np.ndarray]
    arrived: float
    attempts: int
    resumed: bool


@dataclass(frozen=True)
class EngineResult:
    """Everything the supervisor knows after a batch finishes."""

    n_replications: int
    outcomes: Tuple[ReplicationOutcome, ...]
    failures: Tuple[FailureRecord, ...]
    degraded: bool
    deadline_hit: bool
    n_resumed: int
    n_retried: int
    checkpoint_path: Optional[str] = None

    @property
    def n_completed(self) -> int:
        return len(self.outcomes)

    @property
    def n_failed(self) -> int:
        """Replications missing from the pool (abandoned or never run)."""
        return self.n_replications - self.n_completed


def _resolve_checkpoint(
    policy: ResiliencePolicy, fingerprint: dict, label: str
) -> Optional[CheckpointFile]:
    if policy.checkpoint_path is not None:
        return CheckpointFile(policy.checkpoint_path, fingerprint)
    if policy.checkpoint_dir is not None:
        stem = "".join(
            ch if ch.isalnum() or ch in "._-" else "_" for ch in label
        ) or "replications"
        name = f"{stem}-{fingerprint_digest(fingerprint)}.jsonl"
        return CheckpointFile(Path(policy.checkpoint_dir) / name, fingerprint)
    return None


class _OrderedFlush:
    """Advance checkpoint appends in strict replication-index order.

    Workers complete out of order, but the JSONL checkpoint must read
    exactly as a serial run would have written it (that is what makes
    resumed pools bit-identical).  The flush pointer walks the index
    line: resumed indices are already on disk, abandoned ones are
    never written (serial skips them too), completed ones append; the
    pointer stalls at the first index still undetermined.
    """

    def __init__(
        self,
        n_replications: int,
        checkpoint: Optional[CheckpointFile],
        seeder: ReplicationSeeder,
        completed: dict,
        resumed: set,
        abandoned: set,
    ):
        self._n = n_replications
        self._checkpoint = checkpoint
        self._seeder = seeder
        self._completed = completed
        self._resumed = resumed
        self._abandoned = abandoned
        self._next = 0

    def advance(self) -> None:
        while self._next < self._n:
            index = self._next
            if index in self._resumed or index in self._abandoned:
                self._next += 1
                continue
            outcome = self._completed.get(index)
            if outcome is None:
                return
            if self._checkpoint is not None:
                lost = outcome.lost
                self._checkpoint.append(
                    ReplicationRecord(
                        index=index,
                        lost=(
                            lost
                            if isinstance(lost, float)
                            else tuple(float(x) for x in lost)
                        ),
                        arrived=outcome.arrived,
                        attempts=outcome.attempts,
                        spawn_key=self._seeder.spawn_key(index),
                    )
                )
            self._next += 1


def _supervise_parallel(
    task: ReplicationTask,
    n_replications: int,
    seeder: ReplicationSeeder,
    policy: ResiliencePolicy,
    checkpoint: Optional[CheckpointFile],
    completed: dict,
    failures: list,
    backend: Backend,
    label: str,
    started: float,
    deadline: Optional[float],
    reporter,
) -> Tuple[int, bool]:
    """Run the outstanding replications on ``backend``.

    Mutates ``completed`` and ``failures`` in place; returns
    ``(n_retried, deadline_hit)``.  All retry decisions and checkpoint
    appends happen here, in the parent — workers only execute payloads.
    """
    telemetry = _spans.is_enabled()
    abandoned: set = set()
    flush = _OrderedFlush(
        n_replications, checkpoint, seeder, completed,
        set(completed), abandoned,
    )
    flush.advance()
    n_retried = 0
    deadline_hit = False
    fatal_error: Optional[BaseException] = None
    fatal_index = -1

    def _prefix_resolved() -> bool:
        return all(
            i in completed or i in abandoned for i in range(fatal_index)
        )

    def _payload(index: int) -> WorkerPayload:
        attempt = seeder.attempts(index)
        return WorkerPayload(
            index=index,
            attempt=attempt,
            task=task,
            generator=seeder.generator(index),
            label=label,
            telemetry=telemetry,
            health_check=True,
        )

    timeout_budget = policy.replication_timeout_seconds
    launched: dict = {}  # (index, attempt) -> launch clock
    stale: set = set()  # timed-out epochs whose results must be dropped

    with backend.session() as session:

        def _submit(index: int) -> None:
            payload = _payload(index)
            session.submit(payload)
            launched[(payload.index, payload.attempt)] = policy.clock()

        for index in range(n_replications):
            if index not in completed:
                _submit(index)
        while launched:
            if fatal_error is not None and _prefix_resolved():
                break
            if deadline is not None and policy.clock() >= deadline:
                # In-flight work is cancelled/discarded by the session
                # teardown; uncollected completions are recomputed
                # deterministically on resume.
                deadline_hit = True
                break
            wait = None
            if timeout_budget is not None:
                now = policy.clock()
                remaining = min(
                    timeout_budget - (now - at) for at in launched.values()
                )
                wait = max(0.001, remaining)
            result = session.next_completed(timeout=wait)
            if result is None:
                # Nothing finished before the earliest per-attempt
                # budget expired: declare overdue attempts hung.  The
                # pool cannot preempt a running task, so the attempt
                # is fenced off (its eventual result discarded) and a
                # fresh attempt dispatched on the next child stream —
                # a hang becomes an ordinary retryable failure.
                now = policy.clock()
                for key in sorted(launched):
                    if now - launched[key] < timeout_budget:
                        continue
                    index, attempt = key
                    del launched[key]
                    stale.add(key)
                    if fatal_error is not None and index > fatal_index:
                        # Serial execution never reaches this
                        # replication; don't retry or record it.
                        continue
                    _metrics.add("replications_timed_out")
                    failures.append(
                        FailureRecord(
                            index=index,
                            attempt=attempt,
                            kind="ReplicationTimeout",
                            message=(
                                f"replication {index} attempt {attempt} "
                                f"exceeded {timeout_budget}s wall-clock "
                                "budget (declared hung)"
                            ),
                            elapsed_seconds=now - started,
                        )
                    )
                    if attempt >= policy.max_retries:
                        _metrics.add("replications_failed")
                        abandoned.add(index)
                        flush.advance()
                        continue
                    _metrics.add("replications_retried")
                    n_retried += 1
                    _submit(index)
                continue
            key = (result.index, result.attempt)
            if key in stale:
                # A fenced-off attempt finally returned: drop the
                # result — and its telemetry — on the floor.  Its
                # replacement (or abandonment) is already decided.
                stale.discard(key)
                _metrics.add("replications_stale_results")
                continue
            launched.pop(key, None)
            merge_result_telemetry(result)
            if result.failed:
                if not result.retryable:
                    # A crash aborts the batch exactly as it aborts a
                    # serial run — but serial completes (and
                    # checkpoints) every replication *before* the
                    # crash point first.  Workers complete out of
                    # order, so keep draining until the index prefix
                    # below the crash is resolved, then raise; the
                    # checkpoint stays a serial prefix either way
                    # because the ordered flush stalls at the crashed
                    # index.
                    if fatal_error is None or result.index < fatal_index:
                        fatal_error = result.error
                        fatal_index = result.index
                    continue
                if fatal_error is not None and result.index > fatal_index:
                    # Serial execution never reaches this replication;
                    # don't retry or record it while aborting.
                    continue
                failures.append(
                    FailureRecord(
                        index=result.index,
                        attempt=result.attempt,
                        kind=result.error_kind,
                        message=result.error_message,
                        elapsed_seconds=policy.clock() - started,
                    )
                )
                if result.attempt == 0 and result.generator is not None:
                    # Attempt 0 is the one that runs *on* the parent
                    # stream; the worker mutated a pickled copy, so
                    # adopt it — retries must derive from post-attempt
                    # state exactly as they would in-process.  Later
                    # attempts run on spawned children, which never
                    # feed back into derivation.
                    seeder.adopt_generator(result.index, result.generator)
                if result.attempt >= policy.max_retries:
                    _metrics.add("replications_failed")
                    abandoned.add(result.index)
                    flush.advance()
                    continue
                _metrics.add("replications_retried")
                n_retried += 1
                _submit(result.index)
                continue
            completed[result.index] = ReplicationOutcome(
                index=result.index,
                lost=result.lost,
                arrived=result.arrived,
                attempts=result.attempt + 1,
                resumed=False,
            )
            _metrics.add("replications_completed")
            flush.advance()
            reporter.advance()
    if stale:
        # A fenced-off hung attempt never returned its (discarded)
        # result; on a persistent warm pool the hung process would
        # keep occupying a slot across future sessions, so replace the
        # pool's workers.  Spawn pools die with the session anyway.
        recycle = getattr(backend, "recycle", None)
        if recycle is not None:
            recycle()
            _metrics.add("replications_pool_recycled")
    if fatal_error is not None:
        raise fatal_error
    return n_retried, deadline_hit


def run_replications(
    task: ReplicationTask,
    n_replications: int,
    rng: RngLike = None,
    *,
    policy: Optional[ResiliencePolicy] = None,
    fingerprint: Optional[dict] = None,
    label: str = "",
    backend: Optional[Backend] = None,
) -> EngineResult:
    """Supervise ``n_replications`` runs of ``task`` under ``policy``.

    ``fingerprint`` identifies the batch for checkpoint validation
    (model, geometry, depth); the engine adds ``n_replications`` and
    the seed entropy itself.  Raises
    :class:`~repro.exceptions.SimulationError` only if no replication
    at all completed; otherwise degraded batches return partial
    results flagged via :attr:`EngineResult.degraded`.  With a
    ``backend`` the attempts run on worker processes (``task`` must
    pickle); results are identical to serial, bit for bit.
    """
    n_replications = check_integer(
        n_replications, "n_replications", minimum=1
    )
    if policy is None:
        policy = ResiliencePolicy()
    seeder = ReplicationSeeder(rng, n_replications)
    fingerprint = dict(fingerprint or {})
    fingerprint.setdefault("n_replications", n_replications)
    fingerprint.setdefault(
        "entropy", None if seeder.entropy is None else str(seeder.entropy)
    )
    checkpoint = _resolve_checkpoint(policy, fingerprint, label)

    completed: dict = {}
    if checkpoint is not None and checkpoint.records:
        for index in checkpoint.completed_indices():
            if index >= n_replications:
                continue
            record = checkpoint.records[index]
            lost = (
                record.lost
                if isinstance(record.lost, float)
                else np.asarray(record.lost, dtype=float)
            )
            completed[index] = ReplicationOutcome(
                index=index,
                lost=lost,
                arrived=record.arrived,
                attempts=record.attempts,
                resumed=True,
            )
        _metrics.add("checkpoint_resumed", len(completed))
    n_resumed = len(completed)

    started = policy.clock()
    deadline = policy.deadline(started)
    failures = []
    n_retried = 0
    deadline_hit = False
    reporter = _progress.reporter(
        n_replications, label=label or "resilient_replications"
    )
    try:
        if completed:
            reporter.advance(len(completed))
        if backend is not None:
            n_retried, deadline_hit = _supervise_parallel(
                task, n_replications, seeder, policy, checkpoint,
                completed, failures, backend, label, started, deadline,
                reporter,
            )
        serial_indices = range(n_replications) if backend is None else ()
        for index in serial_indices:
            if index in completed:
                continue
            while True:
                if deadline is not None and policy.clock() >= deadline:
                    deadline_hit = True
                    break
                attempt = seeder.attempts(index)
                generator = seeder.generator(index)
                try:
                    with replication_attempt(index, attempt), span(
                        "replication",
                        index=index,
                        attempt=attempt,
                        label=label,
                    ):
                        lost, arrived = task(index, generator)
                    arrived = float(arrived)
                    check_simulation_health(
                        lost, arrived, context=f"replication {index}"
                    )
                    if arrived <= 0:
                        raise SimulationError(
                            f"replication {index} offered no cells; "
                            "its CLR contribution is undefined",
                            bad_replications=(index,),
                        )
                except RETRYABLE_EXCEPTIONS as exc:
                    failures.append(
                        FailureRecord(
                            index=index,
                            attempt=attempt,
                            kind=type(exc).__name__,
                            message=str(exc),
                            elapsed_seconds=policy.clock() - started,
                        )
                    )
                    if attempt >= policy.max_retries:
                        _metrics.add("replications_failed")
                        break
                    _metrics.add("replications_retried")
                    n_retried += 1
                    continue
                lost_value = (
                    float(lost)
                    if np.ndim(lost) == 0
                    else np.asarray(lost, dtype=float)
                )
                completed[index] = ReplicationOutcome(
                    index=index,
                    lost=lost_value,
                    arrived=arrived,
                    attempts=attempt + 1,
                    resumed=False,
                )
                _metrics.add("replications_completed")
                if checkpoint is not None:
                    checkpoint.append(
                        ReplicationRecord(
                            index=index,
                            lost=(
                                lost_value
                                if isinstance(lost_value, float)
                                else tuple(float(x) for x in lost_value)
                            ),
                            arrived=arrived,
                            attempts=attempt + 1,
                            spawn_key=seeder.spawn_key(index),
                        )
                    )
                reporter.advance()
                break
            if deadline_hit:
                break
    finally:
        reporter.finish()

    outcomes = tuple(completed[i] for i in sorted(completed))
    if not outcomes:
        missing = sorted(set(range(n_replications)) - set(completed))
        raise SimulationError(
            f"no replication completed out of {n_replications} "
            f"({len(failures)} failed attempt(s)"
            + (", deadline exceeded" if deadline_hit else "")
            + "); nothing to pool",
            bad_replications=missing,
        )
    degraded = len(outcomes) < n_replications
    if degraded:
        _metrics.add("replications_degraded")
        warnings.warn(
            DegradedResultWarning(
                f"{label or 'replicated batch'}: pooled estimate covers "
                f"{len(outcomes)}/{n_replications} replications "
                f"({'deadline exceeded' if deadline_hit else 'retry budget exhausted'}); "
                "treat confidence intervals accordingly"
            ),
            stacklevel=2,
        )
    return EngineResult(
        n_replications=n_replications,
        outcomes=outcomes,
        failures=tuple(failures),
        degraded=degraded,
        deadline_hit=deadline_hit,
        n_resumed=n_resumed,
        n_retried=n_retried,
        checkpoint_path=(
            None if checkpoint is None else str(checkpoint.path)
        ),
    )
