"""Resilience policy: retry budgets, deadlines, checkpoint locations.

A :class:`ResiliencePolicy` is the single knob bundle the fault-
tolerant replication engine (:mod:`repro.resilience.engine`) consults:
how many times a failed replication may be retried, how long the whole
batch may run before degrading to a partial pooled estimate, and where
completed replications are checkpointed.

Policies can be passed explicitly to
:func:`repro.queueing.replication.replicated_clr` /
:func:`~repro.queueing.replication.replicated_clr_curve`, or installed
as a process-wide default (:func:`use_policy`) so the experiment
runner's ``--deadline`` / ``--checkpoint-dir`` flags reach every
replicated simulation without threading a parameter through each
figure module.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.exceptions import ParameterError

__all__ = [
    "ResiliencePolicy",
    "get_default_policy",
    "set_default_policy",
    "use_policy",
]


@dataclass(frozen=True)
class ResiliencePolicy:
    """How a replicated batch survives faults.

    Parameters
    ----------
    max_retries:
        Retry budget *per replication*.  Each retry runs on a freshly
        spawned child RNG stream (see
        :class:`repro.resilience.seeding.ReplicationSeeder`), so the
        surviving estimate stays reproducible and independent.  Once a
        replication exhausts the budget it is abandoned and the batch
        degrades instead of raising.
    deadline_seconds:
        Wall-clock budget for one engine run, relative to its start.
    replication_timeout_seconds:
        Wall-clock budget for a *single replication attempt* on a
        process-pool backend.  An attempt running past it is declared
        hung, counted as a retryable failure (``ReplicationTimeout``
        in the failure log), and retried on a fresh child stream; the
        stale worker's eventual result is discarded.  ``None`` (the
        default) keeps the legacy block-forever behavior.  Serial
        inline execution cannot be preempted, so the timeout only
        applies under a parallel backend.
    deadline_at:
        Absolute deadline on the ``clock`` timebase (default
        ``time.monotonic``).  Used by the runner to bound a whole
        multi-experiment invocation; when both deadlines are set the
        earlier one wins.
    checkpoint_path:
        Exact JSONL checkpoint file for this batch.
    checkpoint_dir:
        Directory for auto-named checkpoints
        (``<label>-<fingerprint digest>.jsonl``); ignored when
        ``checkpoint_path`` is set.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    max_retries: int = 2
    deadline_seconds: Optional[float] = None
    replication_timeout_seconds: Optional[float] = None
    deadline_at: Optional[float] = None
    checkpoint_path: Optional[str] = None
    checkpoint_dir: Optional[str] = None
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    def __post_init__(self) -> None:
        if int(self.max_retries) != self.max_retries or self.max_retries < 0:
            raise ParameterError(
                f"max_retries must be a non-negative integer, "
                f"got {self.max_retries!r}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ParameterError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds!r}"
            )
        if (
            self.replication_timeout_seconds is not None
            and self.replication_timeout_seconds <= 0
        ):
            raise ParameterError(
                f"replication_timeout_seconds must be > 0, "
                f"got {self.replication_timeout_seconds!r}"
            )

    def deadline(self, started: float) -> Optional[float]:
        """Absolute deadline for a run that started at ``started``.

        ``None`` when the policy sets no time bound; otherwise the
        earlier of the relative and absolute deadlines.
        """
        candidates = []
        if self.deadline_seconds is not None:
            candidates.append(started + self.deadline_seconds)
        if self.deadline_at is not None:
            candidates.append(self.deadline_at)
        return min(candidates) if candidates else None


_default_policy: Optional[ResiliencePolicy] = None


def set_default_policy(policy: Optional[ResiliencePolicy]) -> None:
    """Install ``policy`` as the process-wide default (None clears it)."""
    global _default_policy
    _default_policy = policy


def get_default_policy() -> Optional[ResiliencePolicy]:
    """The installed default policy, or None (legacy fail-fast mode)."""
    return _default_policy


@contextmanager
def use_policy(policy: Optional[ResiliencePolicy]) -> Iterator[None]:
    """Temporarily install ``policy`` as the default; restores on exit."""
    previous = get_default_policy()
    set_default_policy(policy)
    try:
        yield
    finally:
        set_default_policy(previous)
