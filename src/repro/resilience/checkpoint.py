"""JSONL checkpointing of completed replications.

A checkpoint file makes a long replicated batch restartable: every
completed replication is appended (and flushed) as one JSON line, so
a batch killed at replication 47 of 60 resumes with 47 results loaded
from disk and produces the bit-identical pooled estimate an
uninterrupted run would have (floats round-trip exactly through JSON,
and the engine replays records in replication-index order).

File layout (one object per line)::

    {"type": "header", "version": 1, "fingerprint": {...}}
    {"type": "replication", "index": 0, "lost": 123.0, "arrived": ...,
     "attempts": 1, "spawn_key": [0]}
    ...

The header's *fingerprint* pins the run identity — model repr,
multiplexer geometry, frames/replications, seed entropy — and a
checkpoint whose fingerprint does not match the batch being resumed
is refused with :class:`~repro.exceptions.CheckpointError`: a stale
file can never leak foreign samples into a fresh estimate.  A
truncated final line (the process died mid-write) is tolerated and
discarded; any other corruption is an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.exceptions import CheckpointError

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointFile",
    "ReplicationRecord",
    "fingerprint_digest",
]

CHECKPOINT_VERSION = 1

LostLike = Union[float, Tuple[float, ...]]


@dataclass(frozen=True)
class ReplicationRecord:
    """One completed replication: its pooled inputs and seed path.

    ``lost`` is a scalar for plain CLR batches and a per-buffer tuple
    for CLR-curve batches; ``spawn_key`` is the SeedSequence spawn key
    of the stream that produced the result (None when the batch was
    driven by a caller-supplied Generator with no seed identity).
    """

    index: int
    lost: LostLike
    arrived: float
    attempts: int = 1
    spawn_key: Optional[Tuple[int, ...]] = None

    def to_json(self) -> dict:
        if isinstance(self.lost, (int, float)):
            lost = float(self.lost)
        else:
            lost = [float(x) for x in self.lost]
        return {
            "type": "replication",
            "index": self.index,
            "lost": lost,
            "arrived": self.arrived,
            "attempts": self.attempts,
            "spawn_key": (
                None if self.spawn_key is None else list(self.spawn_key)
            ),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "ReplicationRecord":
        try:
            lost = obj["lost"]
            if isinstance(lost, list):
                lost = tuple(float(x) for x in lost)
            else:
                lost = float(lost)
            spawn_key = obj.get("spawn_key")
            return cls(
                index=int(obj["index"]),
                lost=lost,
                arrived=float(obj["arrived"]),
                attempts=int(obj.get("attempts", 1)),
                spawn_key=(
                    None
                    if spawn_key is None
                    else tuple(int(k) for k in spawn_key)
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed replication record {obj!r}: {exc}"
            ) from exc


def fingerprint_digest(fingerprint: dict) -> str:
    """Short stable digest of a fingerprint (for auto-named files)."""
    canonical = json.dumps(fingerprint, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


class CheckpointFile:
    """Append-only JSONL checkpoint bound to one run fingerprint.

    Opening an existing file validates its header against
    ``fingerprint`` and loads all completed records; opening a fresh
    path writes the header.  :meth:`append` flushes and fsyncs each
    record so a hard kill loses at most the in-flight replication.
    """

    def __init__(self, path: Union[str, Path], fingerprint: dict):
        self.path = Path(path)
        self.fingerprint = dict(fingerprint)
        self.records: Dict[int, ReplicationRecord] = {}
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            header = {
                "type": "header",
                "version": CHECKPOINT_VERSION,
                "fingerprint": self.fingerprint,
            }
            with open(self.path, "w") as fh:
                fh.write(json.dumps(header) + "\n")
                fh.flush()
                os.fsync(fh.fileno())

    def _load(self) -> None:
        text = self.path.read_text()
        # A process killed mid-append leaves a partial final line with
        # no terminating newline; only that exact shape is forgivable.
        truncated_tail = not text.endswith("\n")
        lines = text.splitlines()
        header = self._parse_header(lines[0])
        self._check_fingerprint(header.get("fingerprint"))
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) and truncated_tail:
                    # Interrupted mid-write: the final partial line is
                    # exactly the replication that was lost to the kill.
                    break
                raise CheckpointError(
                    f"{self.path}: corrupt record on line {lineno}"
                ) from None
            if obj.get("type") != "replication":
                raise CheckpointError(
                    f"{self.path}: unexpected entry type "
                    f"{obj.get('type')!r} on line {lineno}"
                )
            record = ReplicationRecord.from_json(obj)
            if record.index in self.records:
                # An append-only checkpoint written by one supervisor
                # can never legitimately repeat an index; a duplicate
                # means two processes shared the file or it was edited.
                # Silently keeping either copy could poison the pooled
                # estimate, so refuse to resume.
                raise CheckpointError(
                    f"{self.path}: duplicate record for replication "
                    f"{record.index} on line {lineno}; the file was "
                    "written by more than one run (delete it or point "
                    "the policy elsewhere)"
                )
            self.records[record.index] = record

    def _parse_header(self, line: str) -> dict:
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{self.path}: unreadable checkpoint header"
            ) from exc
        if header.get("type") != "header":
            raise CheckpointError(
                f"{self.path}: first line is not a checkpoint header"
            )
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{self.path}: checkpoint version {header.get('version')!r} "
                f"!= supported version {CHECKPOINT_VERSION}"
            )
        return header

    def _check_fingerprint(self, stored: Optional[dict]) -> None:
        if stored == self.fingerprint:
            return
        stored = stored or {}
        mismatched = sorted(
            key
            for key in set(stored) | set(self.fingerprint)
            if stored.get(key) != self.fingerprint.get(key)
        )
        raise CheckpointError(
            f"{self.path}: stale checkpoint — fingerprint mismatch on "
            f"{mismatched}; refusing to resume a different run "
            "(delete the file or point the policy elsewhere)"
        )

    def completed_indices(self) -> Sequence[int]:
        return sorted(self.records)

    def append(self, record: ReplicationRecord) -> None:
        """Durably append one completed replication."""
        with open(self.path, "a") as fh:
            fh.write(json.dumps(record.to_json()) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self.records[record.index] = record
