"""Deterministic fault injection for the replication engine.

Proving the recovery paths of :mod:`repro.resilience.engine` needs
faults that arrive on schedule, not by luck.  :func:`inject_faults`
wraps an :class:`~repro.queueing.multiplexer.ATMMultiplexer` so that
chosen ``sample_aggregate`` calls — the single choke point both
:meth:`~repro.queueing.multiplexer.ATMMultiplexer.simulate_clr` and
the CLR-curve path go through, one call per replication attempt —
misbehave in one of four ways:

* ``fail``  — raise :class:`InjectedFault` (a retryable
  :class:`~repro.exceptions.SimulationError`);
* ``crash`` — raise :class:`InjectedCrash` (a ``RuntimeError`` the
  engine deliberately does *not* catch: it simulates a killed batch,
  leaving the checkpoint behind for resume);
* ``nan``   — poison the returned arrivals with a NaN, exercising the
  :func:`~repro.utils.validation.check_simulation_health` guard;
* ``hang``  — sleep for a configured duration before proceeding,
  exercising deadline-bounded degradation.

Call numbers are 1-based and count every ``sample_aggregate`` call on
the wrapped multiplexer, retries included — so a schedule like
``fail={1, 2}`` means "replication 0 fails on its first attempt and
on its first retry", deterministically.

A call counter cannot survive a process pool — each worker would
count its own calls from 1, and completion order is nondeterministic
anyway.  For parallel runs (and as a clearer spelling in serial ones)
the ``*_at`` schedules key faults by ``(replication index, attempt)``
instead, read back from
:func:`repro.utils.replication_context.current_attempt`, which both
the engine's serial loop and the worker wrapper publish around every
attempt.  ``fail_at={(0, 0), (0, 1)}`` is the addressed spelling of
the example above, and it means the same thing in every backend.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.queueing.multiplexer import ATMMultiplexer
from repro.utils.replication_context import current_attempt

__all__ = [
    "FaultInjector",
    "FaultInjectedModel",
    "InjectedCrash",
    "InjectedFault",
    "inject_faults",
]


class InjectedFault(SimulationError):
    """A scheduled, retryable failure raised by the fault injector."""


class InjectedCrash(RuntimeError):
    """A scheduled crash the resilience engine must NOT absorb.

    Stands in for a SIGKILL / OOM / power loss in tests: it aborts the
    batch mid-run while the checkpoint file keeps the completed
    replications for a later resume.
    """


def _attempt_keys(pairs: Iterable[Tuple[int, int]]) -> frozenset:
    return frozenset((int(i), int(a)) for i, a in pairs)


class FaultInjector:
    """Shared call counter plus the schedule of misbehaviours.

    Two addressing schemes coexist: call-counter schedules (``fail``,
    ``crash``, ``nan``, ``hang`` — 1-based call numbers, serial runs
    only) and attempt-addressed schedules (``fail_at``, ``crash_at``,
    ``nan_at``, ``hang_at`` — ``(replication index, attempt)`` pairs,
    deterministic under any backend).
    """

    def __init__(
        self,
        *,
        fail: Iterable[int] = (),
        crash: Iterable[int] = (),
        nan: Iterable[int] = (),
        hang: Optional[Mapping[int, float]] = None,
        fail_at: Iterable[Tuple[int, int]] = (),
        crash_at: Iterable[Tuple[int, int]] = (),
        nan_at: Iterable[Tuple[int, int]] = (),
        hang_at: Optional[Mapping[Tuple[int, int], float]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.fail = frozenset(int(c) for c in fail)
        self.crash = frozenset(int(c) for c in crash)
        self.nan = frozenset(int(c) for c in nan)
        self.hang = {int(c): float(s) for c, s in (hang or {}).items()}
        self.fail_at = _attempt_keys(fail_at)
        self.crash_at = _attempt_keys(crash_at)
        self.nan_at = _attempt_keys(nan_at)
        self.hang_at = {
            (int(i), int(a)): float(s)
            for (i, a), s in (hang_at or {}).items()
        }
        self._sleep = sleep
        self.calls = 0

    def begin_call(self) -> int:
        """Register one replication attempt; hang/fail/crash on cue."""
        self.calls += 1
        call = self.calls
        attempt = current_attempt()
        if call in self.hang:
            self._sleep(self.hang[call])
        if attempt is not None and attempt in self.hang_at:
            self._sleep(self.hang_at[attempt])
        if call in self.crash or (
            attempt is not None and attempt in self.crash_at
        ):
            raise InjectedCrash(
                f"injected crash on call {call} (attempt {attempt})"
            )
        if call in self.fail or (
            attempt is not None and attempt in self.fail_at
        ):
            raise InjectedFault(
                f"injected failure on call {call} (attempt {attempt})"
            )
        return call

    def maybe_poison(self, arrivals: np.ndarray, call: int) -> np.ndarray:
        """NaN-poison the arrivals of a scheduled call."""
        attempt = current_attempt()
        if call not in self.nan and not (
            attempt is not None and attempt in self.nan_at
        ):
            return arrivals
        poisoned = np.array(arrivals, dtype=float, copy=True)
        poisoned[poisoned.shape[0] // 2] = np.nan
        return poisoned


class FaultInjectedModel:
    """Delegating traffic-model proxy that routes sampling via a
    :class:`FaultInjector`.  Everything except ``sample_aggregate``
    (statistics, frame duration, repr) is forwarded to the wrapped
    model, so fingerprints and multiplexer geometry are unchanged —
    a checkpoint written under injection resumes cleanly without it.
    """

    def __init__(self, model: object, injector: FaultInjector):
        self._model = model
        self.injector = injector

    def sample_aggregate(
        self, n_frames: int, n_sources: int, rng=None
    ) -> np.ndarray:
        call = self.injector.begin_call()
        arrivals = self._model.sample_aggregate(n_frames, n_sources, rng)
        return self.injector.maybe_poison(arrivals, call)

    def __getattr__(self, name: str):
        # During unpickling (spawn workers) __getattr__ fires before
        # instance state exists; dunder/underscore lookups must raise
        # rather than recurse through the missing ``_model``.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._model, name)

    def __repr__(self) -> str:
        return repr(self._model)


def inject_faults(
    multiplexer: ATMMultiplexer,
    *,
    fail: Iterable[int] = (),
    crash: Iterable[int] = (),
    nan: Iterable[int] = (),
    hang: Optional[Mapping[int, float]] = None,
    fail_at: Iterable[Tuple[int, int]] = (),
    crash_at: Iterable[Tuple[int, int]] = (),
    nan_at: Iterable[Tuple[int, int]] = (),
    hang_at: Optional[Mapping[Tuple[int, int], float]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Tuple[ATMMultiplexer, FaultInjector]:
    """A faulty clone of ``multiplexer`` plus its injector.

    The clone shares the original's geometry (sources, bandwidth,
    buffer) but samples through a :class:`FaultInjectedModel`; the
    returned :class:`FaultInjector` exposes the live call count for
    assertions.  ``*_at`` schedules address faults by ``(replication
    index, attempt)`` and work identically under process pools, where
    the 1-based call counter cannot (each worker counts alone —
    ``injector.calls`` reflects only the current process).
    """
    injector = FaultInjector(
        fail=fail, crash=crash, nan=nan, hang=hang,
        fail_at=fail_at, crash_at=crash_at, nan_at=nan_at,
        hang_at=hang_at, sleep=sleep,
    )
    model = FaultInjectedModel(multiplexer.model, injector)
    faulty = ATMMultiplexer(
        model,
        multiplexer.n_sources,
        multiplexer.c_per_source,
        buffer_cells=multiplexer.buffer_cells,
    )
    return faulty, injector
