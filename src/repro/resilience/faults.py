"""Deterministic fault injection for the replication engine.

Proving the recovery paths of :mod:`repro.resilience.engine` needs
faults that arrive on schedule, not by luck.  :func:`inject_faults`
wraps an :class:`~repro.queueing.multiplexer.ATMMultiplexer` so that
chosen ``sample_aggregate`` calls — the single choke point both
:meth:`~repro.queueing.multiplexer.ATMMultiplexer.simulate_clr` and
the CLR-curve path go through, one call per replication attempt —
misbehave in one of four ways:

* ``fail``  — raise :class:`InjectedFault` (a retryable
  :class:`~repro.exceptions.SimulationError`);
* ``crash`` — raise :class:`InjectedCrash` (a ``RuntimeError`` the
  engine deliberately does *not* catch: it simulates a killed batch,
  leaving the checkpoint behind for resume);
* ``nan``   — poison the returned arrivals with a NaN, exercising the
  :func:`~repro.utils.validation.check_simulation_health` guard;
* ``hang``  — sleep for a configured duration before proceeding,
  exercising deadline-bounded degradation.

Call numbers are 1-based and count every ``sample_aggregate`` call on
the wrapped multiplexer, retries included — so a schedule like
``fail={1, 2}`` means "replication 0 fails on its first attempt and
on its first retry", deterministically.

A call counter cannot survive a process pool — each worker would
count its own calls from 1, and completion order is nondeterministic
anyway.  For parallel runs (and as a clearer spelling in serial ones)
the ``*_at`` schedules key faults by ``(replication index, attempt)``
instead, read back from
:func:`repro.utils.replication_context.current_attempt`, which both
the engine's serial loop and the worker wrapper publish around every
attempt.  ``fail_at={(0, 0), (0, 1)}`` is the addressed spelling of
the example above, and it means the same thing in every backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.queueing.multiplexer import ATMMultiplexer
from repro.utils.replication_context import current_attempt

__all__ = [
    "FaultInjector",
    "FaultInjectedModel",
    "FaultyDecisionTables",
    "InjectedCrash",
    "InjectedFault",
    "ServiceFaultPlan",
    "ShardCues",
    "inject_faults",
]


class InjectedFault(SimulationError):
    """A scheduled, retryable failure raised by the fault injector."""


class InjectedCrash(RuntimeError):
    """A scheduled crash the resilience engine must NOT absorb.

    Stands in for a SIGKILL / OOM / power loss in tests: it aborts the
    batch mid-run while the checkpoint file keeps the completed
    replications for a later resume.
    """


def _attempt_keys(pairs: Iterable[Tuple[int, int]]) -> frozenset:
    return frozenset((int(i), int(a)) for i, a in pairs)


class FaultInjector:
    """Shared call counter plus the schedule of misbehaviours.

    Two addressing schemes coexist: call-counter schedules (``fail``,
    ``crash``, ``nan``, ``hang`` — 1-based call numbers, serial runs
    only) and attempt-addressed schedules (``fail_at``, ``crash_at``,
    ``nan_at``, ``hang_at`` — ``(replication index, attempt)`` pairs,
    deterministic under any backend).
    """

    def __init__(
        self,
        *,
        fail: Iterable[int] = (),
        crash: Iterable[int] = (),
        nan: Iterable[int] = (),
        hang: Optional[Mapping[int, float]] = None,
        fail_at: Iterable[Tuple[int, int]] = (),
        crash_at: Iterable[Tuple[int, int]] = (),
        nan_at: Iterable[Tuple[int, int]] = (),
        hang_at: Optional[Mapping[Tuple[int, int], float]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.fail = frozenset(int(c) for c in fail)
        self.crash = frozenset(int(c) for c in crash)
        self.nan = frozenset(int(c) for c in nan)
        self.hang = {int(c): float(s) for c, s in (hang or {}).items()}
        self.fail_at = _attempt_keys(fail_at)
        self.crash_at = _attempt_keys(crash_at)
        self.nan_at = _attempt_keys(nan_at)
        self.hang_at = {
            (int(i), int(a)): float(s)
            for (i, a), s in (hang_at or {}).items()
        }
        self._sleep = sleep
        self.calls = 0

    def begin_call(self) -> int:
        """Register one replication attempt; hang/fail/crash on cue."""
        self.calls += 1
        call = self.calls
        attempt = current_attempt()
        if call in self.hang:
            self._sleep(self.hang[call])
        if attempt is not None and attempt in self.hang_at:
            self._sleep(self.hang_at[attempt])
        if call in self.crash or (
            attempt is not None and attempt in self.crash_at
        ):
            raise InjectedCrash(
                f"injected crash on call {call} (attempt {attempt})"
            )
        if call in self.fail or (
            attempt is not None and attempt in self.fail_at
        ):
            raise InjectedFault(
                f"injected failure on call {call} (attempt {attempt})"
            )
        return call

    def maybe_poison(self, arrivals: np.ndarray, call: int) -> np.ndarray:
        """NaN-poison the arrivals of a scheduled call."""
        attempt = current_attempt()
        if call not in self.nan and not (
            attempt is not None and attempt in self.nan_at
        ):
            return arrivals
        poisoned = np.array(arrivals, dtype=float, copy=True)
        poisoned[poisoned.shape[0] // 2] = np.nan
        return poisoned


class FaultInjectedModel:
    """Delegating traffic-model proxy that routes sampling via a
    :class:`FaultInjector`.  Everything except ``sample_aggregate``
    (statistics, frame duration, repr) is forwarded to the wrapped
    model, so fingerprints and multiplexer geometry are unchanged —
    a checkpoint written under injection resumes cleanly without it.
    """

    def __init__(self, model: object, injector: FaultInjector):
        self._model = model
        self.injector = injector

    def sample_aggregate(
        self, n_frames: int, n_sources: int, rng=None
    ) -> np.ndarray:
        call = self.injector.begin_call()
        arrivals = self._model.sample_aggregate(n_frames, n_sources, rng)
        return self.injector.maybe_poison(arrivals, call)

    def __getattr__(self, name: str):
        # During unpickling (spawn workers) __getattr__ fires before
        # instance state exists; dunder/underscore lookups must raise
        # rather than recurse through the missing ``_model``.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._model, name)

    def __repr__(self) -> str:
        return repr(self._model)


# -- service-layer chaos ------------------------------------------------------


@dataclass(frozen=True)
class ShardCues:
    """The chaos cues addressed to one ``(link shard, attempt)``."""

    #: Raise :class:`InjectedCrash` before processing this request.
    crash_request: Optional[int] = None
    #: ``(request, seconds)`` — sleep before processing the request,
    #: simulating a hung worker the supervisor must time out.
    hang: Optional[Tuple[int, float]] = None
    #: Tear the journal append of this event seq (half-written line,
    #: then crash), proving torn-tail recovery.
    torn_event: Optional[int] = None
    #: Requests whose *primary* table lookup raises
    #: :class:`InjectedFault`, driving the circuit breaker.
    table_faults: frozenset = frozenset()

    @property
    def empty(self) -> bool:
        return (
            self.crash_request is None
            and self.hang is None
            and self.torn_event is None
            and not self.table_faults
        )


#: The cues of a shard no chaos is addressed to.
NO_CUES = ShardCues()


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Deterministic chaos schedule for the admission service.

    Every schedule keys on ``(link index, attempt)`` — the same
    addressing the replication injector uses — so a fault fires on
    exactly one epoch of one shard under any backend, and a restarted
    attempt runs clean unless the plan says otherwise.  The plan is a
    frozen, picklable value: it ships to worker processes inside the
    replay task.

    Parameters
    ----------
    crash_shard_at:
        ``{(link, attempt): request}`` — the shard dies (a
        :class:`InjectedCrash`) immediately before processing
        ``request``.
    hang_shard_at:
        ``{(link, attempt): (request, seconds)}`` — the shard sleeps
        ``seconds`` before processing ``request``; with a supervisor
        shard timeout this exercises the hang-detection path.
    torn_write_at:
        ``{(link, attempt): event_seq}`` — the journal append of
        ``event_seq`` is half-written, then the shard dies.
    table_corrupt_at:
        ``{(link, attempt): iterable of requests}`` — the primary
        decision-table lookup for those requests raises, exercising
        the circuit breaker / peak-rate fallback.
    """

    crash_shard_at: Mapping[Tuple[int, int], int] = None
    hang_shard_at: Mapping[Tuple[int, int], Tuple[int, float]] = None
    torn_write_at: Mapping[Tuple[int, int], int] = None
    table_corrupt_at: Mapping[Tuple[int, int], Iterable[int]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "crash_shard_at",
            {
                (int(i), int(a)): int(r)
                for (i, a), r in (self.crash_shard_at or {}).items()
            },
        )
        object.__setattr__(
            self,
            "hang_shard_at",
            {
                (int(i), int(a)): (int(r), float(s))
                for (i, a), (r, s) in (self.hang_shard_at or {}).items()
            },
        )
        object.__setattr__(
            self,
            "torn_write_at",
            {
                (int(i), int(a)): int(e)
                for (i, a), e in (self.torn_write_at or {}).items()
            },
        )
        object.__setattr__(
            self,
            "table_corrupt_at",
            {
                (int(i), int(a)): frozenset(int(r) for r in requests)
                for (i, a), requests in (self.table_corrupt_at or {}).items()
            },
        )

    def shard_cues(self, link_index: int, attempt: int) -> ShardCues:
        """The cues one shard epoch must obey (usually none)."""
        key = (int(link_index), int(attempt))
        cues = ShardCues(
            crash_request=self.crash_shard_at.get(key),
            hang=self.hang_shard_at.get(key),
            torn_event=self.torn_write_at.get(key),
            table_faults=self.table_corrupt_at.get(key, frozenset()),
        )
        return cues


class FaultyDecisionTables:
    """Delegating decision-table proxy that fails cued lookups.

    The replay loop publishes the request index on
    :attr:`current_request` before each admission; a *primary*-policy
    lookup for a cued request raises :class:`InjectedFault` (fallback
    lookups pass through — the breaker's escape hatch must work).
    Everything else (``peek``, counters, snapshot/restore) is
    forwarded to the wrapped cache untouched.
    """

    def __init__(self, tables, faulty_requests, primary_method: str):
        self._tables = tables
        self._faulty_requests = frozenset(
            int(r) for r in faulty_requests
        )
        self._primary_method = primary_method
        self.current_request: Optional[int] = None

    def lookup(self, model, link_capacity, qos, method, *, key=None):
        if (
            method == self._primary_method
            and self.current_request in self._faulty_requests
        ):
            raise InjectedFault(
                f"injected decision-table fault on request "
                f"{self.current_request}"
            )
        return self._tables.lookup(
            model, link_capacity, qos, method, key=key
        )

    def __getattr__(self, name: str):
        # Same unpickling guard as FaultInjectedModel: underscore
        # lookups must raise, not recurse through a missing _tables.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._tables, name)

    def __repr__(self) -> str:
        return f"FaultyDecisionTables({self._tables!r})"


def inject_faults(
    multiplexer: ATMMultiplexer,
    *,
    fail: Iterable[int] = (),
    crash: Iterable[int] = (),
    nan: Iterable[int] = (),
    hang: Optional[Mapping[int, float]] = None,
    fail_at: Iterable[Tuple[int, int]] = (),
    crash_at: Iterable[Tuple[int, int]] = (),
    nan_at: Iterable[Tuple[int, int]] = (),
    hang_at: Optional[Mapping[Tuple[int, int], float]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Tuple[ATMMultiplexer, FaultInjector]:
    """A faulty clone of ``multiplexer`` plus its injector.

    The clone shares the original's geometry (sources, bandwidth,
    buffer) but samples through a :class:`FaultInjectedModel`; the
    returned :class:`FaultInjector` exposes the live call count for
    assertions.  ``*_at`` schedules address faults by ``(replication
    index, attempt)`` and work identically under process pools, where
    the 1-based call counter cannot (each worker counts alone —
    ``injector.calls`` reflects only the current process).
    """
    injector = FaultInjector(
        fail=fail, crash=crash, nan=nan, hang=hang,
        fail_at=fail_at, crash_at=crash_at, nan_at=nan_at,
        hang_at=hang_at, sleep=sleep,
    )
    model = FaultInjectedModel(multiplexer.model, injector)
    faulty = ATMMultiplexer(
        model,
        multiplexer.n_sources,
        multiplexer.c_per_source,
        buffer_cells=multiplexer.buffer_cells,
    )
    return faulty, injector
