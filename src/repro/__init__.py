"""repro — reproduction of Ryu & Elwalid (SIGCOMM '96).

"The Importance of Long-Range Dependence of VBR Video Traffic in ATM
Traffic Engineering: Myths and Realities."

The package answers the paper's question end to end:

* :mod:`repro.models`    — the VBR video models (DAR(p), FBNDP, the
  composites V^v and Z^a, fGn, F-ARIMA, M/G/inf);
* :mod:`repro.core`      — large-deviations analysis: the Bahadur-Rao
  BOP, the Critical Time Scale, the Weibull LRD closed form;
* :mod:`repro.queueing`  — the ATM multiplexer simulator (fluid
  frame-level and cell-level) with a replication harness;
* :mod:`repro.analysis`  — ACF and Hurst estimation for sample paths;
* :mod:`repro.atm`       — QoS contracts, admission control and
  dimensioning built on the above;
* :mod:`repro.experiments` — one module per table/figure of the paper;
* :mod:`repro.obs`       — telemetry: timing spans, counters, JSONL
  traces, and replication progress (off by default; ``REPRO_TRACE=1``);
* :mod:`repro.resilience` — fault-tolerant replication: per-replication
  retry isolation, JSONL checkpoint/resume, deadline-bounded graceful
  degradation, and deterministic fault injection;
* :mod:`repro.service`   — the online admission-control service:
  cached decision tables, the admit/release engine, and the workload
  replay driver (``python -m repro.experiments.runner workload``).

Quickstart::

    import repro

    z = repro.make_z(0.975)                   # LRD video model, H = 0.9
    s = repro.fit_dar(z, order=1)             # its DAR(1) Markov fit
    for model in (z, s):
        est = repro.bahadur_rao_bop(model, c=538.0, b=134.5, n_sources=30)
        print(model, est.bop, est.cts)
"""

from repro import (
    analysis,
    atm,
    constants,
    core,
    io,
    models,
    obs,
    plotting,
    queueing,
    resilience,
    service,
)
from repro.core import (
    BOPCurve,
    BOPEstimate,
    bahadur_rao_bop,
    bop_curve,
    critical_time_scale,
    cts_curve,
    effective_bandwidth_at_cts,
    find_capacity,
    large_n_bop,
    large_n_bop_curve,
    max_admissible_sources,
    rate_function,
    theoretical_cts_slope,
    weibull_bop,
    weibull_bop_from_model,
)
from repro.exceptions import (
    CheckpointError,
    ConvergenceError,
    DegradedResultWarning,
    FittingError,
    NumericalHealthError,
    ParameterError,
    ReproError,
    SimulationError,
    StabilityError,
)
from repro.resilience import ResiliencePolicy
from repro.models import (
    AR1Model,
    DARModel,
    FARIMAModel,
    FBNDPModel,
    FGNModel,
    GaussianMarginal,
    HeavyTailedDuration,
    LognormalMarginal,
    MGInfModel,
    MPEGModel,
    MarkovModulatedSource,
    NegativeBinomialMarginal,
    SuperposedModel,
    TrafficModel,
    fit_dar,
    fit_l_alpha,
    make_l,
    make_s,
    make_v,
    make_z,
    table1_parameters,
)
from repro.queueing import (
    ATMMultiplexer,
    DelayStatistics,
    MarkovArrivalChain,
    exact_clr,
    replicated_clr,
    replicated_clr_curve,
    simulate_finite_buffer,
    simulate_infinite_buffer,
)
from repro.io import Trace, load_trace, save_trace, synthesize_trace
from repro.atm import QoSRequirement, admissible_connections, compare_policies

__version__ = "1.0.0"

__all__ = [
    "ATMMultiplexer",
    "AR1Model",
    "BOPCurve",
    "BOPEstimate",
    "CheckpointError",
    "ConvergenceError",
    "DegradedResultWarning",
    "DARModel",
    "DelayStatistics",
    "FARIMAModel",
    "FBNDPModel",
    "FGNModel",
    "FittingError",
    "GaussianMarginal",
    "HeavyTailedDuration",
    "LognormalMarginal",
    "MGInfModel",
    "MPEGModel",
    "MarkovArrivalChain",
    "MarkovModulatedSource",
    "NegativeBinomialMarginal",
    "NumericalHealthError",
    "ParameterError",
    "QoSRequirement",
    "ReproError",
    "ResiliencePolicy",
    "SimulationError",
    "StabilityError",
    "SuperposedModel",
    "Trace",
    "TrafficModel",
    "admissible_connections",
    "analysis",
    "atm",
    "exact_clr",
    "io",
    "load_trace",
    "plotting",
    "save_trace",
    "synthesize_trace",
    "bahadur_rao_bop",
    "bop_curve",
    "compare_policies",
    "constants",
    "core",
    "critical_time_scale",
    "cts_curve",
    "effective_bandwidth_at_cts",
    "find_capacity",
    "fit_dar",
    "fit_l_alpha",
    "large_n_bop",
    "large_n_bop_curve",
    "make_l",
    "make_s",
    "make_v",
    "make_z",
    "max_admissible_sources",
    "models",
    "obs",
    "queueing",
    "rate_function",
    "replicated_clr",
    "resilience",
    "service",
    "replicated_clr_curve",
    "simulate_finite_buffer",
    "simulate_infinite_buffer",
    "table1_parameters",
    "theoretical_cts_slope",
    "weibull_bop",
    "weibull_bop_from_model",
]
