"""Discrete AutoRegressive process of order p — DAR(p), Jacobs & Lewis.

The paper's short-range-dependent video model (Section 3.1).  The
process is

    ``S_n = V_n * S_{n - A_n} + (1 - V_n) * eps_n``

with ``V_n ~ Bernoulli(rho)``, ``A_n`` taking value ``i`` with
probability ``a_i`` (i = 1..p), and ``eps_n`` i.i.d. with the marginal
distribution ``pi``.  Whatever ``pi`` is, the stationary marginal of
``S`` equals ``pi`` — which is precisely why the paper can give every
model the *same* Gaussian marginal and isolate the effect of the
correlation structure.

The autocorrelation function satisfies the Yule-Walker-type recursion

    ``r(k) = rho * sum_i a_i * r(|k - i|)``,  k >= 1,

so a DAR(p) has p degrees of freedom and can match the first p
autocorrelations of any target process (see
:mod:`repro.models.dar_fitting`).

Sampling:

* DAR(1) has a dedicated fast path: the sample path is a sequence of
  constant *runs* whose lengths are i.i.d. Geometric(1 - rho) and
  whose values are i.i.d. marginal draws, so a path costs
  O(n / E[run]) numpy work instead of an n-step loop.
* General DAR(p) uses the defining recursion, vectorized across
  sources for aggregate sampling.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.constants import FRAME_DURATION
from repro.core.variance_time import geometric_variance_time
from repro.exceptions import ParameterError
from repro.models.base import TrafficModel, coerce_lags, stationary_gaussian_check
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_in_range, check_integer


class DARModel(TrafficModel):
    """DAR(p) frame-size process with a Gaussian marginal.

    Parameters
    ----------
    rho:
        Repeat probability in [0, 1).  For p = 1 this *is* the lag-1
        autocorrelation.
    weights:
        Lag-selection probabilities (a_1, ..., a_p); non-negative,
        summing to 1.  Pass ``(1.0,)`` for DAR(1).
    mean, variance:
        Gaussian marginal parameters (cells/frame).
    """

    def __init__(
        self,
        rho: float,
        weights: Sequence[float],
        mean: float,
        variance: float,
        frame_duration: float = FRAME_DURATION,
        *,
        marginal: "Marginal" = None,
    ):
        super().__init__(frame_duration)
        self.rho = check_in_range(
            rho, "rho", 0.0, 1.0, inclusive_low=True, inclusive_high=False
        )
        weights_arr = np.asarray(weights, dtype=float)
        if weights_arr.ndim != 1 or weights_arr.size == 0:
            raise ParameterError("weights must be a non-empty 1-D sequence")
        if np.any(weights_arr < 0):
            raise ParameterError(f"weights must be non-negative, got {weights!r}")
        total = weights_arr.sum()
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ParameterError(f"weights must sum to 1, got sum={total!r}")
        self.weights = weights_arr / total
        if marginal is None:
            from repro.models.marginals import GaussianMarginal

            stationary_gaussian_check(mean, variance)
            marginal = GaussianMarginal(mean, variance)
        elif not (
            np.isclose(marginal.mean, mean)
            and np.isclose(marginal.variance, variance)
        ):
            raise ParameterError(
                "marginal moments disagree with (mean, variance): "
                f"{marginal!r} vs ({mean!r}, {variance!r})"
            )
        self.marginal = marginal
        self._acf_cache = np.ones(1)

    @classmethod
    def dar1(
        cls,
        lag1: float,
        mean: float,
        variance: float,
        frame_duration: float = FRAME_DURATION,
    ) -> "DARModel":
        """Convenience constructor for DAR(1) with lag-1 correlation ``lag1``."""
        return cls(lag1, (1.0,), mean, variance, frame_duration)

    @classmethod
    def with_marginal(
        cls,
        rho: float,
        weights: Sequence[float],
        marginal: "Marginal",
        frame_duration: float = FRAME_DURATION,
    ) -> "DARModel":
        """DAR(p) with an explicit (possibly non-Gaussian) marginal.

        The DAR construction preserves any innovation law as the
        stationary marginal — the hook behind the paper's Section 6.1
        discussion of heavier-tailed frame sizes.
        """
        return cls(
            rho,
            weights,
            marginal.mean,
            marginal.variance,
            frame_duration,
            marginal=marginal,
        )

    @property
    def order(self) -> int:
        """The order p of the process."""
        return int(self.weights.shape[0])

    # -- statistics ---------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.marginal.mean

    @property
    def variance(self) -> float:
        return self.marginal.variance

    def autocorrelation(self, lags) -> np.ndarray:
        lags_int = coerce_lags(lags)
        max_lag = int(lags_int.max()) if lags_int.size else 0
        self._extend_acf_cache(max_lag)
        return self._acf_cache[lags_int]

    def _extend_acf_cache(self, max_lag: int) -> None:
        """Grow the memoized ACF table.

        The Yule-Walker relations ``r(k) = rho sum_i a_i r(|k-i|)`` are
        *simultaneous* for k = 1..p (r(1) appears on both sides when
        p >= 2), so the first p lags come from a linear solve; beyond p
        every |k - i| < k and the plain recursion applies.
        """
        have = self._acf_cache.shape[0]
        if max_lag < have:
            return
        p = self.order
        table = np.empty(max(max_lag, p) + 1)
        table[0] = 1.0
        if p == 1:
            table[1:] = self.rho ** np.arange(1, table.shape[0])
            self._acf_cache = table[: max_lag + 1]
            return
        # Solve for r(1..p):  r(k) - rho * sum_{j>=1} c_{kj} r(j) = rho a_k
        # where c_{kj} = sum of a_i over i with |k - i| = j.
        matrix = np.eye(p)
        rhs = self.rho * self.weights.copy()
        for k in range(1, p + 1):
            for i in range(1, p + 1):
                j = abs(k - i)
                if j > 0:
                    matrix[k - 1, j - 1] -= self.rho * self.weights[i - 1]
        table[1 : p + 1] = np.linalg.solve(matrix, rhs)
        for k in range(p + 1, table.shape[0]):
            idx = k - np.arange(1, p + 1)
            table[k] = self.rho * float(np.dot(self.weights, table[idx]))
        self._acf_cache = table[: max_lag + 1]

    def variance_time(self, m) -> np.ndarray:
        if self.order == 1:
            return geometric_variance_time(self.variance, self.rho, m)
        return super().variance_time(m)

    # -- sampling -------------------------------------------------------------------

    def sample_frames(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        generator = as_generator(rng)
        if self.order == 1:
            return _dar1_run_length_path(
                self.rho, self.marginal, n_frames, generator
            )
        return self._sample_recursion(n_frames, generator)

    def _sample_recursion(
        self, n_frames: int, generator: np.random.Generator
    ) -> np.ndarray:
        """DAR(p) path via the defining recursion.

        The chain is warmed up for ``64 / (1 - rho)`` steps from an
        i.i.d. marginal start so the returned segment is (numerically)
        stationary in its joint law, not just its marginal.
        """
        p = self.order
        warmup = min(int(64.0 / max(1.0 - self.rho, 1e-6)) + p, 100_000)
        total = n_frames + warmup
        repeat = generator.random(total) < self.rho
        lag_choice = generator.choice(
            np.arange(1, p + 1), size=total, p=self.weights
        )
        fresh = self.marginal.sample(total, generator)
        path = np.empty(total + p)
        path[:p] = self.marginal.sample(p, generator)
        for n in range(total):
            i = n + p
            if repeat[n]:
                path[i] = path[i - lag_choice[n]]
            else:
                path[i] = fresh[n]
        return path[p + warmup :]

    def sample_aggregate(
        self, n_frames: int, n_sources: int, rng: RngLike = None
    ) -> np.ndarray:
        """Sum of N independent chains, vectorized across sources.

        DAR is *not* closed under superposition, so all N chains are
        simulated; the recursion runs once with (N,)-vector states.
        """
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        n_sources = check_integer(n_sources, "n_sources", minimum=1)
        with self.aggregate_span(n_frames, n_sources):
            generator = as_generator(rng)
            if self.order == 1:
                total = np.zeros(n_frames)
                for _ in range(n_sources):
                    total += _dar1_run_length_path(
                        self.rho, self.marginal, n_frames, generator
                    )
                return total
            p = self.order
            warmup = min(int(64.0 / max(1.0 - self.rho, 1e-6)) + p, 100_000)
            total_steps = n_frames + warmup
            # Ring buffer over the last p states: row (head + p - k) % p
            # holds the value lagged k frames.  Initially head = 0, so
            # row p - k is lag k — the same layout the old np.vstack
            # shift maintained, without its O(p N) copy every frame.
            state = self.marginal.sample(p * n_sources, generator).reshape(
                p, n_sources
            )
            head = 0  # row holding the oldest state (lag p)
            out = np.empty((n_frames, n_sources))
            lags = np.arange(1, p + 1)
            columns = np.arange(n_sources)
            for n in range(total_steps):
                repeat = generator.random(n_sources) < self.rho
                lag_choice = generator.choice(
                    lags, size=n_sources, p=self.weights
                )
                fresh = self.marginal.sample(n_sources, generator)
                rows = (head + p - lag_choice) % p
                new = np.where(repeat, state[rows, columns], fresh)
                state[head] = new
                head = (head + 1) % p
                if n >= warmup:
                    out[n - warmup] = new
            return out.sum(axis=1)

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            rho=self.rho,
            weights=tuple(self.weights),
            order=self.order,
            marginal=repr(self.marginal),
        )
        return info


def _dar1_run_length_path(
    rho: float,
    marginal,
    n_frames: int,
    generator: np.random.Generator,
) -> np.ndarray:
    """DAR(1) path via run-length sampling.

    A DAR(1) path is constant over runs whose lengths are i.i.d.
    Geometric(1 - rho) (support {1, 2, ...}) and whose values are
    i.i.d. marginal draws; successive run values are independent.
    Works for any marginal — the construction never mixes values.
    """
    if rho == 0.0:
        return marginal.sample(n_frames, generator)
    mean_run = 1.0 / (1.0 - rho)
    lengths_chunks = []
    covered = 0
    while covered < n_frames:
        need = int((n_frames - covered) / mean_run) + 16
        chunk = generator.geometric(1.0 - rho, size=need)
        lengths_chunks.append(chunk)
        covered += int(chunk.sum())
    lengths = np.concatenate(lengths_chunks)
    ends = np.cumsum(lengths)
    n_runs = int(np.searchsorted(ends, n_frames)) + 1
    lengths = lengths[:n_runs]
    lengths[-1] -= int(ends[n_runs - 1]) - n_frames
    values = marginal.sample(n_runs, generator)
    return np.repeat(values, lengths)
