"""Discrete-time fractional Gaussian noise (fGn) — exact LRD, g = 1.

Section 2 of the paper cites fGn as the canonical *exact* LRD process:
its ACF is ``r(k) = 1/2 nabla^2(k^{2H})`` (Eq. (2) with g(T_s) = 1)
and its variance-time function is exactly ``V(m) = sigma^2 m^{2H}``
(self-similarity of the integrated process, fractional Brownian
motion).  It is the model underlying the Norros storage result and the
Weibull BOP asymptotics of Section 4.1, so we carry it as a reference
model alongside the paper's FBNDP-based constructions.

Sampling is exact via circulant embedding
(:func:`repro.models.gaussian.sample_stationary_gaussian`).
"""

from __future__ import annotations

import numpy as np

from repro.constants import FRAME_DURATION
from repro.core.variance_time import exact_lrd_variance_time
from repro.models.base import TrafficModel, coerce_lags, stationary_gaussian_check
from repro.models.gaussian import sample_stationary_gaussian
from repro.utils.mathx import second_central_difference
from repro.utils.rng import RngLike
from repro.utils.validation import check_in_range, check_integer


class FGNModel(TrafficModel):
    """Fractional Gaussian noise frame-size process.

    Parameters
    ----------
    hurst:
        Hurst parameter in (0, 1).  H > 0.5 gives LRD; H = 0.5 reduces
        to i.i.d. Gaussian frames.
    mean, variance:
        Gaussian marginal parameters (cells/frame).
    """

    def __init__(
        self,
        hurst: float,
        mean: float,
        variance: float,
        frame_duration: float = FRAME_DURATION,
    ):
        super().__init__(frame_duration)
        self._hurst = check_in_range(hurst, "hurst", 0.0, 1.0)
        stationary_gaussian_check(mean, variance)
        self._mean = float(mean)
        self._variance = float(variance)

    @property
    def hurst(self) -> float:
        return self._hurst

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._variance

    def autocorrelation(self, lags) -> np.ndarray:
        lags_int = coerce_lags(lags)
        out = np.ones(lags_int.shape, dtype=float)
        positive = lags_int >= 1
        if np.any(positive):
            out[positive] = 0.5 * second_central_difference(
                lags_int[positive].astype(float), 2.0 * self._hurst
            )
        return out

    def variance_time(self, m) -> np.ndarray:
        """Exactly ``sigma^2 m^{2H}`` (g = 1 in the exact-LRD closed form)."""
        return exact_lrd_variance_time(self._variance, 1.0, self._hurst, m)

    def sample_frames(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        acf = np.concatenate(([1.0], self.acf(n_frames - 1)))
        path = sample_stationary_gaussian(acf, n_frames, rng)
        return self._mean + np.sqrt(self._variance) * path

    def sample_aggregate(
        self, n_frames: int, n_sources: int, rng: RngLike = None
    ) -> np.ndarray:
        """Exact aggregate: the sum of N i.i.d. fGns is fGn with variance
        N sigma^2 and the same H (Gaussian closure), so one path suffices."""
        n_sources = check_integer(n_sources, "n_sources", minimum=1)
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        with self.aggregate_span(n_frames, n_sources):
            acf = np.concatenate(([1.0], self.acf(n_frames - 1)))
            path = sample_stationary_gaussian(acf, n_frames, rng)
            return (
                n_sources * self._mean
                + np.sqrt(n_sources * self._variance) * path
            )

    def describe(self) -> dict:
        return super().describe()
