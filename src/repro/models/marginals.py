"""Frame-size marginal distributions for DAR-type models.

The DAR(p) construction preserves *any* innovation distribution as its
stationary marginal, which is how the paper gives every model the same
Gaussian marginal.  Section 6.1 discusses what changes under other
marginals — Heyman & Lakshman reached the paper's conclusions with
**negative binomial** frame sizes — so this module makes the marginal
pluggable:

* :class:`GaussianMarginal` — the paper's choice (lightest tail);
* :class:`NegativeBinomialMarginal` — the Heyman-Lakshman choice
  (right-skewed, heavier tail; integer cell counts);
* :class:`LognormalMarginal` — a convenient heavier-tail alternative
  often fitted to video frame sizes.

All are parameterized by (mean, variance) so models with different
marginal *shapes* can share first- and second-order statistics — the
controlled comparison of Section 6.1.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.exceptions import ParameterError
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


class Marginal(abc.ABC):
    """A frame-size distribution with known mean and variance."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Mean frame size (cells/frame)."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Frame-size variance (cells/frame)^2."""

    @abc.abstractmethod
    def sample(self, size: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``size`` i.i.d. frame sizes."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(mean={self.mean:.6g}, "
            f"variance={self.variance:.6g})"
        )


class GaussianMarginal(Marginal):
    """The paper's Gaussian frame-size marginal."""

    def __init__(self, mean: float, variance: float):
        self._mean = check_positive(mean, "mean", strict=False)
        self._variance = check_positive(variance, "variance")

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._variance

    def sample(self, size: int, rng: RngLike = None) -> np.ndarray:
        generator = as_generator(rng)
        return self._mean + math.sqrt(self._variance) * (
            generator.standard_normal(size)
        )


class NegativeBinomialMarginal(Marginal):
    """Negative binomial frame sizes (Heyman & Lakshman's marginal).

    Parameterized by (mean, variance) with variance > mean:
    ``p = mean/variance`` and ``r = mean^2 / (variance - mean)``.
    Right-skewed with integer support — the classic count model for
    videoconference frame sizes.
    """

    def __init__(self, mean: float, variance: float):
        check_positive(mean, "mean")
        check_positive(variance, "variance")
        if variance <= mean:
            raise ParameterError(
                "negative binomial requires variance > mean, got "
                f"mean={mean!r}, variance={variance!r}"
            )
        self._mean = float(mean)
        self._variance = float(variance)
        self.p = mean / variance
        self.r = mean**2 / (variance - mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._variance

    def sample(self, size: int, rng: RngLike = None) -> np.ndarray:
        generator = as_generator(rng)
        return generator.negative_binomial(self.r, self.p, size).astype(
            float
        )


class LognormalMarginal(Marginal):
    """Lognormal frame sizes — a heavier-tailed continuous alternative.

    Moment-matched: ``sigma_log^2 = log(1 + variance/mean^2)`` and
    ``mu_log = log(mean) - sigma_log^2 / 2``.
    """

    def __init__(self, mean: float, variance: float):
        check_positive(mean, "mean")
        check_positive(variance, "variance")
        self._mean = float(mean)
        self._variance = float(variance)
        self.sigma_log = math.sqrt(math.log1p(variance / mean**2))
        self.mu_log = math.log(mean) - self.sigma_log**2 / 2.0

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._variance

    def sample(self, size: int, rng: RngLike = None) -> np.ndarray:
        generator = as_generator(rng)
        return generator.lognormal(self.mu_log, self.sigma_log, size)
