"""Fractal-Binomial-Noise-Driven Poisson process (FBNDP).

This is the exact-LRD traffic substrate of the paper (Section 3.2,
after Ryu & Lowen): ``M`` i.i.d. fractal ON/OFF renewal processes —
whose ON and OFF durations share the heavy-tailed law of
:mod:`repro.models.heavy_tail` — are superposed into a fractal
binomial rate process (FBN); that rate, scaled by ``R`` cells/sec,
drives a Poisson point process.  Counting arrivals over video frames
of length ``T_s`` yields the frame-size process ``L_n`` with

* mean            ``mu = lambda T_s``  (lambda = R M / 2),
* variance        ``sigma^2 = [1 + (T_s/T_0)^alpha] lambda T_s``,
* autocorrelation ``r(k) = g * 1/2 nabla^2(k^{alpha+1})`` where
  ``g = T_s^alpha / (T_s^alpha + T_0^alpha)``,

i.e. an *exact* LRD process with Hurst parameter ``H = (alpha+1)/2``
and fractal onset time ``T_0``.

Two facts this implementation leans on:

1. **Superposition closure** — the sum of N i.i.d. FBNDP sources with
   parameters (alpha, A, M, R) is itself an FBNDP with (alpha, A, NM,
   R), so the aggregate offered to a multiplexer is simulated directly
   with NM ON/OFF processes and a single Poisson draw per frame
   (sums of independent Poissons are Poisson).
2. **Stationary start** — each ON/OFF process starts in its stationary
   regime: equiprobable ON/OFF phase and an equilibrium
   (residual-life) first duration.  Without this, the heavy-tailed
   cycle lengths would contaminate estimates with a very long
   transient.
"""

from __future__ import annotations

import math
import numpy as np

from repro.constants import FRAME_DURATION
from repro.core.variance_time import exact_lrd_variance_time
from repro.exceptions import ParameterError
from repro.models.base import TrafficModel, coerce_lags
from repro.models.heavy_tail import HeavyTailedDuration
from repro.utils.mathx import second_central_difference
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_in_range, check_integer, check_positive


def onset_time_coefficient(alpha: float) -> float:
    """The constant ``c_alpha`` in the fractal-onset-time formula.

    ``T_0 = { c_alpha * R^{-1} * A^{alpha-1} }^{1/alpha}`` with
    ``c_alpha = alpha (alpha+1) (2-alpha)^{-1} [(1-alpha) e^{2-alpha} + 1]``
    (Section 3.2 of the paper).
    """
    check_in_range(alpha, "alpha", 0.0, 1.0)
    return (
        alpha
        * (alpha + 1.0)
        / (2.0 - alpha)
        * ((1.0 - alpha) * math.exp(2.0 - alpha) + 1.0)
    )


def onset_time_from_physical(alpha: float, knee: float, rate_on: float) -> float:
    """Fractal onset time T_0 from the physical parameters (alpha, A, R)."""
    check_positive(knee, "knee")
    check_positive(rate_on, "rate_on")
    c_alpha = onset_time_coefficient(alpha)
    return (c_alpha / rate_on * knee ** (alpha - 1.0)) ** (1.0 / alpha)


def knee_from_onset_time(alpha: float, onset_time: float, rate_on: float) -> float:
    """Invert :func:`onset_time_from_physical` for the knee A.

    ``A = (T_0^alpha * R / c_alpha)^{1/(alpha-1)}`` — note the negative
    exponent 1/(alpha-1): a *smaller* onset time requires a *larger*
    knee at fixed R.
    """
    check_positive(onset_time, "onset_time")
    check_positive(rate_on, "rate_on")
    c_alpha = onset_time_coefficient(alpha)
    return (onset_time**alpha * rate_on / c_alpha) ** (1.0 / (alpha - 1.0))


def fractal_onoff_occupancy(
    durations: HeavyTailedDuration,
    n_frames: int,
    frame_duration: float,
    rng: RngLike = None,
) -> np.ndarray:
    """ON-time (seconds) per frame for one stationary fractal ON/OFF process.

    Generates the renewal sequence until it covers the horizon and
    integrates the ON indicator over each frame interval via the
    cumulative-occupancy function evaluated at frame boundaries —
    O((renewals + frames) log) with no per-renewal Python work.
    """
    n_frames = check_integer(n_frames, "n_frames", minimum=1)
    check_positive(frame_duration, "frame_duration")
    generator = as_generator(rng)
    horizon = n_frames * frame_duration

    # Stationary initial conditions: equiprobable phase, residual first leg.
    initially_on = bool(generator.random() < 0.5)
    legs = [durations.sample_equilibrium(1, generator)]
    covered = float(legs[0][0])
    mean_leg = durations.mean
    while covered < horizon:
        batch_size = int((horizon - covered) / mean_leg * 1.2) + 64
        batch = durations.sample(batch_size, generator)
        legs.append(batch)
        covered += float(batch.sum())
    epochs = np.concatenate(legs).cumsum()
    epochs = epochs[: int(np.searchsorted(epochs, horizon)) + 1]

    boundaries = np.concatenate(([0.0], epochs))
    if initially_on:
        starts = boundaries[0::2]
        ends = boundaries[1::2]
    else:
        starts = boundaries[1::2]
        ends = boundaries[2::2]
    starts = starts[: ends.shape[0]]
    np.clip(ends, None, horizon, out=ends)
    keep = starts < horizon
    starts, ends = starts[keep], ends[keep]

    # Cumulative ON time U(t) at frame boundaries t_j = j * T_s:
    # count fully-started intervals, subtract the overrun of the last one.
    cumlen = np.concatenate(([0.0], np.cumsum(ends - starts)))
    frame_bounds = np.arange(n_frames + 1) * frame_duration
    idx = np.searchsorted(starts, frame_bounds, side="right")
    cumulative = cumlen[idx]
    has_open = idx > 0
    overrun = np.zeros_like(cumulative)
    overrun[has_open] = np.maximum(
        0.0, ends[idx[has_open] - 1] - frame_bounds[has_open]
    )
    cumulative -= overrun
    return np.diff(cumulative)


#: Memory budget (array elements) for one batched chunk of ON/OFF
#: processes in :func:`superposed_onoff_occupancy`.
_CHUNK_ELEMENT_BUDGET = 16_000_000

#: Safety margin on the expected renewal count per process; rows whose
#: renewals still fall short of the horizon are resampled individually.
_RENEWAL_MARGIN = 1.35


def superposed_onoff_occupancy(
    durations: HeavyTailedDuration,
    n_processes: int,
    n_frames: int,
    frame_duration: float,
    rng: RngLike = None,
) -> np.ndarray:
    """Total ON-time per frame across many i.i.d. fractal ON/OFF processes.

    Batched equivalent of summing :func:`fractal_onoff_occupancy` over
    ``n_processes`` — the hot path of every FBNDP aggregate sample.
    It rests on the identity

        ``sum_i overlap([s_i, e_i), [0, t)) =
          sum_i (t - s_i)^+  -  sum_i (t - e_i)^+``,

    which pools the ON intervals of *all* processes into one sorted
    starts array and one sorted ends array, evaluates the cumulative
    occupancy U(t) at every frame boundary with two searchsorteds, and
    differences — no per-process binning loop, no interval clipping.

    Processes whose pre-sized renewal batch fails to cover the horizon
    (heavy-tailed sums fluctuate) are resampled individually with
    :func:`fractal_onoff_occupancy`; the replacement is a fresh
    unconditional draw from the correct law, so no bias is introduced.
    """
    n_processes = check_integer(n_processes, "n_processes", minimum=1)
    n_frames = check_integer(n_frames, "n_frames", minimum=1)
    check_positive(frame_duration, "frame_duration")
    generator = as_generator(rng)
    horizon = n_frames * frame_duration

    est_renewals = int(horizon / durations.mean * _RENEWAL_MARGIN) + 32
    chunk_rows = max(1, _CHUNK_ELEMENT_BUDGET // est_renewals)

    # Per-frame-bin tallies of interval starts/ends below the horizon:
    # counts and coordinate sums.  U(t_j) then needs only cumulative
    # sums of these bins — no global sort of the pooled intervals.
    start_count = np.zeros(n_frames)
    start_sum = np.zeros(n_frames)
    end_count = np.zeros(n_frames)
    end_sum = np.zeros(n_frames)
    occupancy_extra = np.zeros(n_frames)

    done = 0
    while done < n_processes:
        rows = min(chunk_rows, n_processes - done)
        done += rows
        # Stationary start: equilibrium first leg, fair ON/OFF phase;
        # boundaries[i] = [0, e_1, e_2, ...] are the renewal epochs.
        boundaries = np.empty((rows, est_renewals + 1))
        boundaries[:, 0] = 0.0
        legs = durations.ppf(generator.random((rows, est_renewals)))
        legs[:, 0] = durations.sample_equilibrium(rows, generator)
        np.cumsum(legs, axis=1, out=boundaries[:, 1:])
        initially_on = generator.random(rows) < 0.5

        covered = boundaries[:, -1] >= horizon
        for _ in range(int(np.count_nonzero(~covered))):
            # Resample this process from scratch (fresh unconditional
            # draw; see docstring) and bank its occupancy directly.
            occupancy_extra += fractal_onoff_occupancy(
                durations, n_frames, frame_duration, generator
            )

        # ON intervals are [b_j, b_{j+1}) for alternating j, offset by
        # the initial phase.
        parity = np.arange(est_renewals) % 2 == 0
        select = np.logical_xor.outer(~initially_on, parity)
        select &= covered[:, None]
        starts = boundaries[:, :-1][select]
        ends = boundaries[:, 1:][select]

        for values, counts, sums in (
            (starts, start_count, start_sum),
            (ends, end_count, end_sum),
        ):
            inside = values < horizon
            values = values[inside]
            bins = np.minimum(
                (values / frame_duration).astype(np.int64), n_frames - 1
            )
            counts += np.bincount(bins, minlength=n_frames)
            sums += np.bincount(bins, weights=values, minlength=n_frames)

    # U(t_j) = sum_i (t_j - s_i)^+ - sum_i (t_j - e_i)^+ evaluated at
    # every frame boundary t_j = j * T_s via the bin cumulatives.
    bounds = np.arange(n_frames + 1) * frame_duration
    n_starts = np.concatenate(([0.0], np.cumsum(start_count)))
    s_starts = np.concatenate(([0.0], np.cumsum(start_sum)))
    n_ends = np.concatenate(([0.0], np.cumsum(end_count)))
    s_ends = np.concatenate(([0.0], np.cumsum(end_sum)))
    u_at_bounds = (bounds * n_starts - s_starts) - (bounds * n_ends - s_ends)
    occupancy = np.diff(u_at_bounds) + occupancy_extra
    # The identity is exact; the evaluation subtracts large cumulants,
    # so frames with (near-)zero true occupancy can come out at -1e-8.
    return np.clip(occupancy, 0.0, n_processes * frame_duration)


class FBNDPModel(TrafficModel):
    """FBNDP frame-size process — the paper's exact-LRD video model.

    Construct either from physical parameters via the constructor /
    :meth:`from_physical`, or from target frame statistics via
    :meth:`from_statistics` (the route the paper's Table 1 takes:
    given mean, variance, alpha and M, solve for R, T_0 and A).

    Parameters
    ----------
    alpha:
        Fractal exponent in (0, 1); Hurst parameter H = (alpha+1)/2.
    knee:
        Stitch point A (seconds) of the ON/OFF duration law.
    n_onoff:
        Number M of superposed ON/OFF processes.  Larger M makes the
        frame-size marginal closer to Gaussian (CLT).
    rate_on:
        Arrival rate R (cells/sec) of one ON/OFF process while ON.
    """

    def __init__(
        self,
        alpha: float,
        knee: float,
        n_onoff: int,
        rate_on: float,
        frame_duration: float = FRAME_DURATION,
    ):
        super().__init__(frame_duration)
        self.alpha = check_in_range(alpha, "alpha", 0.0, 1.0)
        self.knee = check_positive(knee, "knee")
        self.n_onoff = check_integer(n_onoff, "n_onoff", minimum=1)
        self.rate_on = check_positive(rate_on, "rate_on")
        self.durations = HeavyTailedDuration.from_alpha(alpha, knee)

    # -- alternate constructors ------------------------------------------------

    @classmethod
    def from_physical(
        cls,
        alpha: float,
        knee: float,
        n_onoff: int,
        rate_on: float,
        frame_duration: float = FRAME_DURATION,
    ) -> "FBNDPModel":
        """Alias of the constructor, for symmetry with from_statistics."""
        return cls(alpha, knee, n_onoff, rate_on, frame_duration)

    @classmethod
    def from_statistics(
        cls,
        mean: float,
        variance: float,
        alpha: float,
        n_onoff: int,
        frame_duration: float = FRAME_DURATION,
    ) -> "FBNDPModel":
        """Solve (R, T_0, A) for target frame mean/variance (Table 1 route).

        Inversions: ``lambda = mean / T_s``, ``R = 2 lambda / M``,
        ``(T_s/T_0)^alpha = variance/mean - 1`` and A from the onset-time
        formula.  Requires ``variance > mean`` — the Poisson noise floor
        makes smaller variances unreachable.
        """
        check_positive(mean, "mean")
        check_positive(variance, "variance")
        check_positive(frame_duration, "frame_duration")
        ratio = variance / mean
        if ratio <= 1.0:
            raise ParameterError(
                "FBNDP requires variance > mean (index of dispersion > 1); "
                f"got variance/mean = {ratio:.6g}"
            )
        arrival_rate = mean / frame_duration
        rate_on = 2.0 * arrival_rate / check_integer(n_onoff, "n_onoff", minimum=1)
        onset = frame_duration * (ratio - 1.0) ** (-1.0 / alpha)
        knee = knee_from_onset_time(alpha, onset, rate_on)
        return cls(alpha, knee, n_onoff, rate_on, frame_duration)

    # -- derived parameters ------------------------------------------------------

    @property
    def arrival_rate(self) -> float:
        """Mean arrival rate lambda = R M / 2 (cells/sec)."""
        return self.rate_on * self.n_onoff / 2.0

    @property
    def onset_time(self) -> float:
        """Fractal onset time T_0 (seconds)."""
        return onset_time_from_physical(self.alpha, self.knee, self.rate_on)

    @property
    def lrd_weight(self) -> float:
        """``g = T_s^alpha / (T_s^alpha + T_0^alpha)`` from Eq. (2)."""
        ts_a = self.frame_duration**self.alpha
        return ts_a / (ts_a + self.onset_time**self.alpha)

    @property
    def hurst(self) -> float:
        return (self.alpha + 1.0) / 2.0

    # -- TrafficModel interface ----------------------------------------------------

    @property
    def mean(self) -> float:
        return self.arrival_rate * self.frame_duration

    @property
    def variance(self) -> float:
        ratio = (self.frame_duration / self.onset_time) ** self.alpha
        return (1.0 + ratio) * self.mean

    def autocorrelation(self, lags) -> np.ndarray:
        lags_int = coerce_lags(lags)
        out = np.ones(lags_int.shape, dtype=float)
        positive = lags_int >= 1
        if np.any(positive):
            out[positive] = self.lrd_weight * 0.5 * second_central_difference(
                lags_int[positive].astype(float), self.alpha + 1.0
            )
        return out

    def variance_time(self, m) -> np.ndarray:
        """Exact closed form ``sigma^2 [(1-g) m + g m^{2H}]``."""
        return exact_lrd_variance_time(self.variance, self.lrd_weight, self.hurst, m)

    def sample_frames(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        return self._sample_superposed(n_frames, self.n_onoff, rng)

    def sample_aggregate(
        self, n_frames: int, n_sources: int, rng: RngLike = None
    ) -> np.ndarray:
        """Exact aggregate: N i.i.d. FBNDPs = one FBNDP with N*M processes."""
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        n_sources = check_integer(n_sources, "n_sources", minimum=1)
        with self.aggregate_span(n_frames, n_sources):
            return self._sample_superposed(
                n_frames, self.n_onoff * n_sources, rng
            )

    def _sample_superposed(
        self, n_frames: int, n_processes: int, rng: RngLike
    ) -> np.ndarray:
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        generator = as_generator(rng)
        occupancy = superposed_onoff_occupancy(
            self.durations,
            n_processes,
            n_frames,
            self.frame_duration,
            generator,
        )
        return generator.poisson(self.rate_on * occupancy).astype(float)

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            alpha=self.alpha,
            knee=self.knee,
            n_onoff=self.n_onoff,
            rate_on=self.rate_on,
            arrival_rate=self.arrival_rate,
            onset_time=self.onset_time,
            lrd_weight=self.lrd_weight,
        )
        return info
