"""Abstract base class for frame-level VBR traffic models.

A *traffic model* in this library describes the stationary sequence
``X = {X_n}`` of video frame sizes (in ATM cells) emitted by one
source, exactly as in Section 2 of the paper: a wide-sense stationary
process with mean ``mu``, variance ``sigma^2``, autocorrelation
function ``r(k)``, and frame duration ``T_s``.

The interface deliberately separates the three things the paper's
analysis needs:

* **second-order statistics** — :meth:`autocorrelation` and
  :meth:`variance_time` feed the large-deviations machinery
  (:mod:`repro.core`);
* **sample paths** — :meth:`sample_frames` (one source) and
  :meth:`sample_aggregate` (the superposition of N i.i.d. sources)
  feed the multiplexer simulator (:mod:`repro.queueing`);
* **LRD metadata** — :attr:`hurst` and :attr:`is_lrd` drive the
  closed-form Weibull/CTS results that only apply to exact-LRD models.

``sample_aggregate`` has a generic implementation (sum of independent
single-source paths) that concrete models override when the family is
closed under superposition (Gaussian processes, FBNDP).
"""

from __future__ import annotations

import abc
from typing import Sequence, Union

import numpy as np

from repro.constants import FRAME_DURATION
from repro.obs.spans import span as _span
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer, check_positive

LagsLike = Union[int, Sequence[int], np.ndarray]


class TrafficModel(abc.ABC):
    """A stationary frame-size process for one VBR video source."""

    def __init__(self, frame_duration: float = FRAME_DURATION):
        self._frame_duration = check_positive(frame_duration, "frame_duration")

    # -- first- and second-order statistics ---------------------------------

    @property
    def frame_duration(self) -> float:
        """Frame duration T_s in seconds."""
        return self._frame_duration

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Mean frame size mu (cells/frame)."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Frame-size variance sigma^2 (cells/frame)^2."""

    @property
    def std(self) -> float:
        """Frame-size standard deviation (cells/frame)."""
        return float(np.sqrt(self.variance))

    @abc.abstractmethod
    def autocorrelation(self, lags: LagsLike) -> np.ndarray:
        """Autocorrelation r(k) evaluated at the given non-negative lags.

        Always returns an array (even for scalar input); ``r(0) = 1``.
        """

    def acf(self, max_lag: int) -> np.ndarray:
        """Autocorrelations ``[r(1), ..., r(max_lag)]`` as a vector.

        Convenience wrapper around :meth:`autocorrelation` in the layout
        expected by the variance-time and fitting code (lag 0 excluded).
        """
        max_lag = check_integer(max_lag, "max_lag", minimum=0)
        if max_lag == 0:
            return np.empty(0)
        return self.autocorrelation(np.arange(1, max_lag + 1))

    def variance_time(self, m: LagsLike) -> np.ndarray:
        """Variance-time function ``V(m) = Var(X_1 + ... + X_m)``.

        This is Eq. (10) of the paper:
        ``V(m) = sigma^2 [m + 2 sum_{i=1}^{m-1} (m - i) r(i)]``.
        The generic implementation computes the cumulative sums of the
        ACF once for the largest requested ``m``; models with closed
        forms (DAR(1), AR(1), exact LRD) override it.
        """
        from repro.core.variance_time import variance_time_from_acf

        m_arr = np.atleast_1d(np.asarray(m, dtype=np.int64))
        if m_arr.size == 0:
            return np.empty(0)
        if np.any(m_arr < 1):
            raise ValueError("variance_time requires m >= 1")
        max_m = int(m_arr.max())
        acf = self.acf(max_m - 1) if max_m > 1 else np.empty(0)
        return variance_time_from_acf(acf, self.variance, m_arr)

    # -- LRD metadata --------------------------------------------------------

    @property
    def hurst(self) -> float:
        """Hurst parameter H; 0.5 for short-range dependent models."""
        return 0.5

    @property
    def is_lrd(self) -> bool:
        """Whether the model is long-range dependent (H > 0.5)."""
        return self.hurst > 0.5

    # -- sampling ------------------------------------------------------------

    @abc.abstractmethod
    def sample_frames(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        """Draw a stationary sample path of ``n_frames`` frame sizes."""

    def sample_aggregate(
        self, n_frames: int, n_sources: int, rng: RngLike = None
    ) -> np.ndarray:
        """Sample the superposition of ``n_sources`` i.i.d. copies.

        Returns the frame-by-frame total arrivals (cells/frame) offered
        to a multiplexer.  The generic implementation sums independent
        single-source paths from spawned generators.
        """
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        n_sources = check_integer(n_sources, "n_sources", minimum=1)
        with self.aggregate_span(n_frames, n_sources):
            generators = spawn_generators(rng, n_sources)
            total = np.zeros(n_frames)
            for source_rng in generators:
                total += self.sample_frames(n_frames, source_rng)
            return total

    def aggregate_span(self, n_frames: int, n_sources: int):
        """Telemetry span for one :meth:`sample_aggregate` call.

        Overrides wrap their body in this so every model reports under
        the same span name with the model class as an attribute.
        """
        return _span(
            "model.sample_aggregate",
            model=type(self).__name__,
            n_frames=int(n_frames),
            n_sources=int(n_sources),
        )

    # -- misc ----------------------------------------------------------------

    def describe(self) -> dict:
        """Summary of the model's key statistics (for reports and repr)."""
        return {
            "class": type(self).__name__,
            "mean": self.mean,
            "variance": self.variance,
            "hurst": self.hurst,
            "is_lrd": self.is_lrd,
            "frame_duration": self.frame_duration,
        }

    def __repr__(self) -> str:
        stats = self.describe()
        return (
            f"{stats['class']}(mean={stats['mean']:.6g}, "
            f"variance={stats['variance']:.6g}, hurst={stats['hurst']:.4g})"
        )


def coerce_lags(lags: LagsLike) -> np.ndarray:
    """Normalize a lag specification into a validated int array (>= 0)."""
    lags_arr = np.atleast_1d(np.asarray(lags))
    if lags_arr.size and not np.issubdtype(lags_arr.dtype, np.number):
        raise ValueError(f"lags must be numeric, got dtype {lags_arr.dtype}")
    lags_int = lags_arr.astype(np.int64)
    if lags_arr.size and np.any(lags_int != lags_arr):
        raise ValueError("lags must be integers")
    if lags_arr.size and np.any(lags_int < 0):
        raise ValueError("lags must be >= 0")
    return lags_int


def stationary_gaussian_check(mean: float, variance: float) -> None:
    """Validate a Gaussian marginal specification (shared by models)."""
    check_positive(variance, "variance")
    # Frame sizes are cell counts; a negative mean is certainly a bug.
    check_positive(mean, "mean", strict=False)
