"""Finite-state Markov-modulated video sources and their theory.

The pre-LRD video-modeling literature the paper defends — Maglaris et
al.'s birth-death mini-source model, the DAR(1) chain of Heyman &
Lakshman / Elwalid et al. — lives in this class: a discrete-time
Markov chain ``J_n`` with transition matrix P emits ``a_j`` cells in a
frame spent in state j.  Everything is computable in closed(-ish)
form:

* stationary law, mean, variance;
* autocorrelation ``r(k)`` from iterated products ``P^k a`` (cached);
* the **effective bandwidth** of Markov-additive arrivals
  (Elwalid-Mitra / Kesidis-Walrand):

      ``e(theta) = Lambda(theta) / theta``,
      ``Lambda(theta) = log sr( P diag(e^{theta a}) )``

  with ``sr`` the spectral radius, and the induced **asymptotic decay
  rate** theta* of the overflow probability at capacity c (the unique
  root of ``e(theta) = c``) — the classical log-linear buffer
  asymptotics whose breakdown under LRD is the starting point of the
  paper's Section 4.

Combined with :mod:`repro.queueing.exact_markov` (exact finite-buffer
CLR for the same chains) this closes the loop: classical theory,
large-deviations asymptotics, exact solution and simulation can all be
compared on one object.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.constants import FRAME_DURATION
from repro.exceptions import ConvergenceError, ParameterError, StabilityError
from repro.models.base import TrafficModel, coerce_lags
from repro.models.dar import DARModel
from repro.queueing.exact_markov import MarkovArrivalChain
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_in_range, check_integer, check_positive


class MarkovModulatedSource(TrafficModel):
    """Frame-size process driven by a finite Markov chain."""

    def __init__(
        self,
        chain: MarkovArrivalChain,
        frame_duration: float = FRAME_DURATION,
    ):
        super().__init__(frame_duration)
        self.chain = chain
        self._pi = chain.stationary_distribution()
        self._acf_vectors = [chain.arrivals.copy()]  # P^k a, k = 0, 1, ...

    # -- constructors ---------------------------------------------------------

    @classmethod
    def maglaris(
        cls,
        n_minisources: int,
        p_on_to_off: float,
        p_off_to_on: float,
        cells_per_minisource: float,
        base_cells: float = 0.0,
        frame_duration: float = FRAME_DURATION,
    ) -> "MarkovModulatedSource":
        """The Maglaris birth-death video model (discrete time).

        ``n_minisources`` independent two-state mini-sources each flip
        ON->OFF with probability ``p_on_to_off`` and OFF->ON with
        ``p_off_to_on`` per frame; a frame carries ``base_cells``
        plus ``cells_per_minisource`` per active mini-source.  The
        active count is a birth-death chain whose row transitions are
        the convolution of two binomials.
        """
        m = check_integer(n_minisources, "n_minisources", minimum=1)
        beta = check_in_range(
            p_on_to_off, "p_on_to_off", 0.0, 1.0, inclusive_high=True
        )
        alpha = check_in_range(
            p_off_to_on, "p_off_to_on", 0.0, 1.0, inclusive_high=True
        )
        check_positive(cells_per_minisource, "cells_per_minisource")
        check_positive(base_cells, "base_cells", strict=False)
        from scipy import stats

        transition = np.zeros((m + 1, m + 1))
        for j in range(m + 1):
            stay = stats.binom.pmf(np.arange(j + 1), j, 1.0 - beta)
            join = stats.binom.pmf(np.arange(m - j + 1), m - j, alpha)
            transition[j, : j + (m - j) + 1] = np.convolve(stay, join)
        arrivals = base_cells + cells_per_minisource * np.arange(m + 1)
        return cls(MarkovArrivalChain(transition, arrivals), frame_duration)

    @classmethod
    def from_dar1(
        cls, model: DARModel, n_bins: int = 21
    ) -> "MarkovModulatedSource":
        """Quantized-chain version of a DAR(1) model (see exact_markov)."""
        return cls(
            MarkovArrivalChain.from_dar1(model, n_bins),
            model.frame_duration,
        )

    # -- statistics --------------------------------------------------------------

    @property
    def mean(self) -> float:
        return float(np.dot(self._pi, self.chain.arrivals))

    @property
    def variance(self) -> float:
        second = float(np.dot(self._pi, self.chain.arrivals**2))
        return second - self.mean**2

    def autocorrelation(self, lags) -> np.ndarray:
        lags_int = coerce_lags(lags)
        max_lag = int(lags_int.max()) if lags_int.size else 0
        while len(self._acf_vectors) <= max_lag:
            self._acf_vectors.append(
                self.chain.transition @ self._acf_vectors[-1]
            )
        mu, var = self.mean, self.variance
        if var <= 0:
            raise ParameterError("degenerate chain: zero variance")
        a = self.chain.arrivals
        out = np.empty(lags_int.shape)
        for index, k in enumerate(lags_int.reshape(-1)):
            cross = float(np.dot(self._pi * a, self._acf_vectors[int(k)]))
            out.reshape(-1)[index] = (cross - mu**2) / var
        return out

    # -- effective-bandwidth theory -------------------------------------------------

    def log_mgf_rate(self, theta: float) -> float:
        """Markov-additive scaled cumulant ``Lambda(theta)``.

        ``Lambda(theta) = log sr(P diag(e^{theta a}))``; computed with
        the arrivals centered at their maximum to avoid overflow.
        """
        if theta == 0.0:
            return 0.0
        a = self.chain.arrivals
        shift = float(a.max()) if theta > 0 else float(a.min())
        kernel = self.chain.transition * np.exp(theta * (a - shift))[None, :]
        radius = float(np.max(np.abs(np.linalg.eigvals(kernel))))
        return theta * shift + float(np.log(radius))

    def effective_bandwidth(self, theta: float) -> float:
        """Classical effective bandwidth ``e(theta) = Lambda(theta)/theta``."""
        check_positive(theta, "theta")
        return self.log_mgf_rate(theta) / theta

    def decay_rate_for_capacity(
        self, c: float, *, theta_hi: float = 1.0
    ) -> float:
        """The asymptotic overflow decay rate theta* with ``e(theta*) = c``.

        The buffer-overflow probability of this source into a buffer of
        size B served at c cells/frame decays as ``exp(-theta* B)`` —
        the classical log-linear law (compare the Bahadur-Rao rate
        function's large-b slope).  Requires ``mean < c < max arrival``
        (otherwise overflow is impossible and theta* is infinite).
        """
        if c <= self.mean:
            raise StabilityError(
                f"capacity {c:.6g} must exceed the mean {self.mean:.6g}"
            )
        if c >= float(self.chain.arrivals.max()):
            raise ParameterError(
                "capacity at or above the peak rate: overflow impossible, "
                "theta* is unbounded"
            )

        def gap(theta: float) -> float:
            return self.effective_bandwidth(theta) - c

        lo = 1e-9
        hi = theta_hi
        for _ in range(200):
            if gap(hi) > 0:
                break
            hi *= 2.0
        else:
            raise ConvergenceError(
                "could not bracket theta*", last_value=hi
            )
        return float(optimize.brentq(gap, lo, hi, xtol=1e-12))

    # -- sampling -------------------------------------------------------------------

    def sample_states(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        """Sample the modulating state path (stationary start)."""
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        generator = as_generator(rng)
        cumulative = np.cumsum(self.chain.transition, axis=1)
        uniforms = generator.random(n_frames)
        states = np.empty(n_frames, dtype=np.int64)
        state = int(
            np.searchsorted(np.cumsum(self._pi), generator.random())
        )
        state = min(state, self.chain.n_states - 1)
        for n in range(n_frames):
            state = int(np.searchsorted(cumulative[state], uniforms[n]))
            state = min(state, self.chain.n_states - 1)
            states[n] = state
        return states

    def sample_frames(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        return self.chain.arrivals[self.sample_states(n_frames, rng)]

    def describe(self) -> dict:
        info = super().describe()
        info.update(n_states=self.chain.n_states)
        return info
