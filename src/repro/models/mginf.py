"""M/G/infinity (Cox) input model with Pareto sessions — asymptotic LRD.

Section 4.1 of the paper cites Likhanov et al. and Parulekar &
Makowski, who show that for the "M/G/infinity-type model of Cox" the
buffer-overflow tail decays at most *hyperbolically* — the strongest
version of the LRD scare.  We include the model as an additional
substrate so that claim can be examined with the same CTS machinery.

The busy-server process: sessions arrive as a Poisson process of rate
``session_rate``; each holds a server for an i.i.d. Pareto time
``T ~ Pareto(beta, t_min)`` (survival ``(t_min/t)^beta`` for
``t >= t_min``) with 1 < beta < 2.  The stationary occupancy ``N(t)``
is Poisson with mean ``session_rate * E[T]``, and

    ``Cov(N(0), N(tau)) = session_rate * int_tau^inf S(u) du``,

so ``r(tau) ~ tau^{1-beta}`` — asymptotic LRD with
``H = (3 - beta)/2``.  The frame process samples ``N`` at frame
boundaries scaled by ``cells_per_session`` cells/frame per active
session.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FRAME_DURATION
from repro.models.base import TrafficModel, coerce_lags
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_in_range, check_integer, check_positive


class MGInfModel(TrafficModel):
    """Frame process driven by M/G/infinity busy servers with Pareto holding.

    Parameters
    ----------
    session_rate:
        Poisson session arrival rate (sessions/sec).
    beta:
        Pareto tail exponent in (1, 2): finite-mean, infinite-variance
        holding times; H = (3 - beta)/2.
    t_min:
        Pareto scale (minimum session length, seconds).
    cells_per_session:
        Cells emitted per frame by each active session.
    """

    def __init__(
        self,
        session_rate: float,
        beta: float,
        t_min: float,
        cells_per_session: float = 1.0,
        frame_duration: float = FRAME_DURATION,
    ):
        super().__init__(frame_duration)
        self.session_rate = check_positive(session_rate, "session_rate")
        self.beta = check_in_range(beta, "beta", 1.0, 2.0)
        self.t_min = check_positive(t_min, "t_min")
        self.cells_per_session = check_positive(
            cells_per_session, "cells_per_session"
        )

    # -- session-time moments -----------------------------------------------------

    @property
    def mean_holding(self) -> float:
        """E[T] = beta t_min / (beta - 1)."""
        return self.beta * self.t_min / (self.beta - 1.0)

    @property
    def mean_occupancy(self) -> float:
        """Stationary mean number of busy servers (Poisson mean)."""
        return self.session_rate * self.mean_holding

    @property
    def hurst(self) -> float:
        return (3.0 - self.beta) / 2.0

    # -- TrafficModel interface ------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.cells_per_session * self.mean_occupancy

    @property
    def variance(self) -> float:
        # Poisson occupancy: variance equals the mean (in sessions).
        return self.cells_per_session**2 * self.mean_occupancy

    def _integrated_sf(self, tau: np.ndarray) -> np.ndarray:
        """``int_tau^inf S(u) du`` for the Pareto holding time."""
        b, tm = self.beta, self.t_min
        tau = np.asarray(tau, dtype=float)
        below = tm - tau + tm / (b - 1.0)  # int_tau^tm 1 du + int_tm^inf S
        above_t = np.where(tau > tm, tau, tm)
        above = tm**b * above_t ** (1.0 - b) / (b - 1.0)
        return np.where(tau <= tm, below, above)

    def autocorrelation(self, lags) -> np.ndarray:
        lags_int = coerce_lags(lags)
        tau = lags_int.astype(float) * self.frame_duration
        return self._integrated_sf(tau) / self.mean_holding

    def sample_frames(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        return self._sample_occupancy(n_frames, 1, rng)

    def sample_aggregate(
        self, n_frames: int, n_sources: int, rng: RngLike = None
    ) -> np.ndarray:
        """Exact aggregate: N independent M/G/inf systems merge into one
        with N-fold session rate (Poisson superposition)."""
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        n_sources = check_integer(n_sources, "n_sources", minimum=1)
        with self.aggregate_span(n_frames, n_sources):
            return self._sample_occupancy(n_frames, n_sources, rng)

    def _sample_occupancy(
        self, n_frames: int, n_copies: int, rng: RngLike
    ) -> np.ndarray:
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        n_copies = check_integer(n_copies, "n_copies", minimum=1)
        generator = as_generator(rng)
        rate = self.session_rate * n_copies
        horizon = n_frames * self.frame_duration
        boundaries = np.arange(n_frames) * self.frame_duration

        # Stationary initial sessions: Poisson(mean) count, residual
        # lives from the equilibrium distribution of the Pareto law.
        n_initial = generator.poisson(rate * self.mean_holding)
        residual = self._equilibrium_ppf(generator.random(n_initial))
        delta = np.zeros(n_frames, dtype=np.int64)
        self._accumulate(delta, np.zeros(n_initial), residual, boundaries)

        # Fresh sessions over the horizon.
        n_new = generator.poisson(rate * horizon)
        starts = generator.random(n_new) * horizon
        holding = self.t_min * (1.0 - generator.random(n_new)) ** (
            -1.0 / self.beta
        )
        self._accumulate(delta, starts, holding, boundaries)
        occupancy = np.cumsum(delta)
        return self.cells_per_session * occupancy.astype(float)

    def _equilibrium_ppf(self, u: np.ndarray) -> np.ndarray:
        """Quantile of the Pareto equilibrium (residual-life) law.

        ``F_e(t) = [t (b-1)/b + ...]/E[T]`` piecewise: uniform density
        below t_min, power tail above; breakpoint at
        ``u* = t_min / E[T] = (b-1)/b``.
        """
        b, tm = self.beta, self.t_min
        mean = self.mean_holding
        split = tm / mean  # = (b - 1) / b
        below = np.minimum(u, split) * mean
        frac = np.clip(1.0 - np.where(u > split, u, split), 1e-300, 1.0)
        above = tm * (b * frac) ** (1.0 / (1.0 - b))
        return np.where(u <= split, below, above)

    @staticmethod
    def _accumulate(
        delta: np.ndarray,
        starts: np.ndarray,
        holding: np.ndarray,
        boundaries: np.ndarray,
    ) -> None:
        """Record each session's [start, start+holding) boundary coverage.

        Writes +1/-1 increments into ``delta``; the caller cumsums once
        at the end to obtain the occupancy at each frame boundary.
        """
        ends = starts + holding
        lo = np.searchsorted(boundaries, starts, side="left")
        hi = np.searchsorted(boundaries, ends, side="left")
        np.add.at(delta, lo[lo < delta.shape[0]], 1)
        np.subtract.at(delta, hi[hi < delta.shape[0]], 1)

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            session_rate=self.session_rate,
            beta=self.beta,
            t_min=self.t_min,
            cells_per_session=self.cells_per_session,
            mean_occupancy=self.mean_occupancy,
        )
        return info
