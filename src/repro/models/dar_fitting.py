"""Fitting a DAR(p) model to the first p autocorrelations of a target.

This implements the construction behind the paper's model ``S``
(Section 3 and Table 1): given a target process — in the paper, the
LRD composite ``Z^a`` — build the DAR(p) whose first p
autocorrelations match the target's *exactly*.

The DAR(p) ACF recursion ``r(k) = rho sum_i a_i r(|k-i|)`` is linear
in the products ``b_i = rho a_i`` once the first p target
autocorrelations are fixed, so the fit is a p x p Yule-Walker solve:

    ``R b = r``  with  ``R[k, i] = r*(|k - i|)`` (r*(0) = 1),

then ``rho = sum_i b_i`` and ``a_i = b_i / rho``.  Not every
correlation sequence is reachable: DAR mixtures require ``a_i >= 0``
and ``0 <= rho < 1``; violations raise :class:`FittingError` (with an
opt-out projection for exploratory use).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import FittingError
from repro.models.base import TrafficModel
from repro.models.dar import DARModel
from repro.utils.validation import check_integer

#: Tolerance below which a small negative fitted weight is treated as zero.
_WEIGHT_TOLERANCE = 1e-10


def solve_dar_parameters(
    target_acf: Sequence[float], *, strict: bool = True
) -> Tuple[float, np.ndarray]:
    """Solve (rho, weights) so the DAR(p) matches ``target_acf`` = r(1..p).

    Parameters
    ----------
    target_acf:
        The first p autocorrelations of the target process.
    strict:
        When true (default), reject fits with negative weights or
        rho outside [0, 1).  When false, clip negative weights to zero,
        renormalize, and return the projected (approximate) fit.

    Returns
    -------
    (rho, weights):
        Repeat probability and lag-selection probabilities a_1..a_p.
    """
    r = np.asarray(target_acf, dtype=float)
    if r.ndim != 1 or r.size == 0:
        raise FittingError("target_acf must be a non-empty 1-D sequence")
    p = r.shape[0]
    extended = np.concatenate(([1.0], r))  # extended[k] = r(k), k = 0..p
    lags = np.arange(1, p + 1)
    matrix = extended[np.abs(lags[:, None] - lags[None, :])]
    try:
        b = np.linalg.solve(matrix, r)
    except np.linalg.LinAlgError as exc:
        raise FittingError(
            f"Yule-Walker system is singular for target ACF {r.tolist()}"
        ) from exc
    rho = float(b.sum())
    if not 0.0 <= rho < 1.0:
        raise FittingError(
            f"fitted rho = {rho:.6g} outside [0, 1); the target ACF "
            f"{r.tolist()} is not representable by a DAR({p}) process"
        )
    if rho == 0.0:
        return 0.0, np.full(p, 1.0 / p)
    weights = b / rho
    negative = weights < -_WEIGHT_TOLERANCE
    if np.any(negative):
        if strict:
            raise FittingError(
                f"fitted DAR({p}) weights {weights.tolist()} contain negative "
                "entries; the target ACF is not a DAR mixture "
                "(pass strict=False to project onto the feasible set)"
            )
        weights = np.clip(weights, 0.0, None)
    weights = np.clip(weights, 0.0, None)
    weights /= weights.sum()
    return rho, weights


def fit_dar(
    target: TrafficModel, order: int, *, strict: bool = True
) -> DARModel:
    """Build the DAR(p) model ``S`` matched to ``target`` (paper Section 3).

    Matches the target's mean, variance and first ``order``
    autocorrelations; the frame duration is inherited.
    """
    order = check_integer(order, "order", minimum=1)
    target_acf = target.acf(order)
    rho, weights = solve_dar_parameters(target_acf, strict=strict)
    return DARModel(
        rho,
        weights,
        target.mean,
        target.variance,
        frame_duration=target.frame_duration,
    )


def fitted_acf_error(
    target: TrafficModel, fitted: DARModel, max_lag: int
) -> np.ndarray:
    """Per-lag ACF error ``r_fit(k) - r_target(k)`` for k = 1..max_lag.

    Diagnostic for how quickly a DAR(p) fit diverges from an LRD target
    beyond the matched lags (the paper's Figs. 3(c) and 3(d)).
    """
    max_lag = check_integer(max_lag, "max_lag", minimum=1)
    return fitted.acf(max_lag) - target.acf(max_lag)
