"""Superposition of independent traffic models.

Section 3.3 of the paper builds its main video models V^v and Z^a as
the sum of an FBNDP component X (power-law long-term correlations) and
a DAR(1) component Y (geometric short-term correlations).  For
independent components the second-order statistics compose exactly:

* mean:       ``mu = sum_i mu_i``
* variance:   ``sigma^2 = sum_i sigma_i^2``
* ACF:        ``r(k) = sum_i (sigma_i^2 / sigma^2) r_i(k)``
  — the paper's Eq. (5), a variance-weighted average (for X + Y with
  ``v = sigma_X^2 / sigma_Y^2``, the weights are v/(v+1) and 1/(v+1));
* variance-time: ``V(m) = sum_i V_i(m)`` — so closed-form component
  V(m)s (FBNDP, DAR(1)) make the composite's Bahadur-Rao analysis
  closed-form too.

Sample paths are sums of independent component paths, and aggregates
of N sources delegate to each component's (possibly exact) aggregate
sampler.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ParameterError
from repro.models.base import TrafficModel
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer


class SuperposedModel(TrafficModel):
    """Sum of independent :class:`TrafficModel` components."""

    def __init__(self, components: Sequence[TrafficModel]):
        components = tuple(components)
        if not components:
            raise ParameterError("SuperposedModel needs at least one component")
        durations = {c.frame_duration for c in components}
        if len(durations) != 1:
            raise ParameterError(
                f"components must share a frame duration, got {sorted(durations)}"
            )
        super().__init__(components[0].frame_duration)
        self.components = components

    @property
    def mean(self) -> float:
        return float(sum(c.mean for c in self.components))

    @property
    def variance(self) -> float:
        return float(sum(c.variance for c in self.components))

    @property
    def variance_ratio(self) -> float:
        """``v = sigma_X^2 / sigma_Y^2`` for two-component models (Eq. 5).

        Defined only for exactly two components, in construction order.
        """
        if len(self.components) != 2:
            raise ParameterError(
                "variance_ratio is defined for two-component superpositions"
            )
        return self.components[0].variance / self.components[1].variance

    @property
    def hurst(self) -> float:
        """Hurst parameter of the superposition.

        The slowest-decaying component dominates the correlation tail,
        so the superposition inherits the maximum component H.
        """
        return max(c.hurst for c in self.components)

    def autocorrelation(self, lags) -> np.ndarray:
        total_var = self.variance
        out = None
        for component in self.components:
            term = component.variance / total_var * component.autocorrelation(lags)
            out = term if out is None else out + term
        return out

    def variance_time(self, m) -> np.ndarray:
        out = None
        for component in self.components:
            term = component.variance_time(m)
            out = term if out is None else out + term
        return out

    def sample_frames(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        generators = spawn_generators(rng, len(self.components))
        total = np.zeros(n_frames)
        for component, component_rng in zip(self.components, generators):
            total += component.sample_frames(n_frames, component_rng)
        return total

    def sample_aggregate(
        self, n_frames: int, n_sources: int, rng: RngLike = None
    ) -> np.ndarray:
        """Aggregate of N sources = sum of component aggregates.

        Each component may exploit its own superposition closure (the
        FBNDP component simulates N*M ON/OFF processes at once; DAR
        simulates N chains).
        """
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        n_sources = check_integer(n_sources, "n_sources", minimum=1)
        with self.aggregate_span(n_frames, n_sources):
            generators = spawn_generators(rng, len(self.components))
            total = np.zeros(n_frames)
            for component, component_rng in zip(self.components, generators):
                total += component.sample_aggregate(
                    n_frames, n_sources, component_rng
                )
            return total

    def describe(self) -> dict:
        info = super().describe()
        info["components"] = [c.describe() for c in self.components]
        return info
