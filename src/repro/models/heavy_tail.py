"""The heavy-tailed ON/OFF duration law of the fractal ON/OFF process.

Section 3.2 of the paper specifies the ON and OFF durations of each
fractal ON/OFF process as i.i.d. draws from the density (gamma = 2 -
alpha, 1 < gamma < 2)::

    p(t) = (gamma / A) * exp(-gamma t / A)          for t <= A,
    p(t) = gamma * exp(-gamma) * A^gamma * t^-(gamma+1)   for t >  A,

i.e. an exponential body smoothly stitched to a Pareto tail at the
knee ``A``.  The tail exponent gamma in (1, 2) gives a finite mean but
infinite variance — the source of the long-range dependence of the
resulting rate process (H = (alpha + 1) / 2 = (3 - gamma) / 2).

Everything needed by the simulator is available in closed form and is
implemented here: pdf/cdf/survival, the quantile function (for
inverse-CDF sampling), the mean, the integrated survival function, and
the *equilibrium* (stationary residual-life) distribution with its own
quantile function — required to start each renewal process in steady
state, without which the simulated traffic would only converge to its
stationary correlation structure after a long, heavy-tailed transient.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_in_range, check_positive

ArrayLike = Union[float, np.ndarray]


class HeavyTailedDuration:
    """Exponential-body / Pareto-tail duration distribution.

    Parameters
    ----------
    gamma:
        Tail exponent in (1, 2); ``gamma = 2 - alpha`` where alpha is
        the fractal exponent of the ON/OFF process.
    knee:
        The stitch point ``A`` (seconds) between the exponential body
        and the Pareto tail.
    """

    def __init__(self, gamma: float, knee: float):
        self.gamma = check_in_range(gamma, "gamma", 1.0, 2.0)
        self.knee = check_positive(knee, "knee")

    @classmethod
    def from_alpha(cls, alpha: float, knee: float) -> "HeavyTailedDuration":
        """Construct from the fractal exponent alpha = 2 - gamma."""
        check_in_range(alpha, "alpha", 0.0, 1.0)
        return cls(2.0 - alpha, knee)

    # -- basic functions -----------------------------------------------------

    def pdf(self, t: ArrayLike) -> np.ndarray:
        """Probability density p(t); zero for t < 0."""
        t_arr = np.asarray(t, dtype=float)
        g, a = self.gamma, self.knee
        body = (g / a) * np.exp(-g * np.minimum(t_arr, a) / a)
        with np.errstate(divide="ignore", invalid="ignore"):
            tail = g * math.exp(-g) * a**g * np.where(t_arr > 0, t_arr, 1.0) ** -(
                g + 1.0
            )
        out = np.where(t_arr <= a, body, tail)
        return np.where(t_arr < 0, 0.0, out)

    def cdf(self, t: ArrayLike) -> np.ndarray:
        """Cumulative distribution F(t)."""
        t_arr = np.asarray(t, dtype=float)
        g, a = self.gamma, self.knee
        body = 1.0 - np.exp(-g * np.clip(t_arr, 0.0, a) / a)
        safe_t = np.where(t_arr > a, t_arr, a)
        tail = 1.0 - math.exp(-g) * (a / safe_t) ** g
        out = np.where(t_arr <= a, body, tail)
        return np.where(t_arr < 0, 0.0, out)

    def sf(self, t: ArrayLike) -> np.ndarray:
        """Survival function S(t) = 1 - F(t)."""
        t_arr = np.asarray(t, dtype=float)
        g, a = self.gamma, self.knee
        body = np.exp(-g * np.clip(t_arr, 0.0, a) / a)
        safe_t = np.where(t_arr > a, t_arr, a)
        tail = math.exp(-g) * (a / safe_t) ** g
        out = np.where(t_arr <= a, body, tail)
        return np.where(t_arr < 0, 1.0, out)

    def ppf(self, u: ArrayLike) -> np.ndarray:
        """Quantile function F^{-1}(u) for u in [0, 1).

        The CDF splits at ``F(A) = 1 - e^{-gamma}``; below it invert the
        exponential body, above it invert the Pareto tail.  Each branch
        is evaluated only on its own elements (this is the hot path of
        FBNDP sampling, which draws tens of millions of durations).
        """
        u_arr = np.asarray(u, dtype=float)
        if np.any((u_arr < 0.0) | (u_arr >= 1.0)):
            raise ValueError("quantile argument must be in [0, 1)")
        g, a = self.gamma, self.knee
        split = 1.0 - math.exp(-g)
        flat = np.ascontiguousarray(u_arr).reshape(-1)
        # log1p(-u) serves both branches: body = -(A/g) * log1p(-u),
        # tail = A * exp(-1 - log1p(-u)/g)  [pow rewritten via exp/log,
        # which vectorizes far better than power on large arrays].
        log_sf = np.log1p(-flat)
        out = log_sf * (-a / g)
        in_tail = flat > split
        out[in_tail] = a * np.exp(-1.0 - log_sf[in_tail] / g)
        return out.reshape(u_arr.shape)

    # -- moments -------------------------------------------------------------

    @property
    def mean(self) -> float:
        """E[T] in closed form.

        ``E[T] = A [ (1 - (1+gamma) e^{-gamma}) / gamma
                     + gamma e^{-gamma} / (gamma - 1) ]``.
        """
        g, a = self.gamma, self.knee
        body = (1.0 - (1.0 + g) * math.exp(-g)) / g
        tail = g * math.exp(-g) / (g - 1.0)
        return a * (body + tail)

    @property
    def variance(self) -> float:
        """Var[T] — infinite for gamma < 2 (the defining heavy tail)."""
        return math.inf

    # -- integrated survival & equilibrium distribution -----------------------

    def integrated_sf(self, t: ArrayLike) -> np.ndarray:
        """``IS(t) = int_0^t S(s) ds`` in closed form.

        For t <= A: ``(A/gamma)(1 - e^{-gamma t / A})``;
        for t > A:  ``IS(A) + e^{-gamma} A^gamma (A^{1-gamma} - t^{1-gamma})
        / (gamma - 1)``.  ``IS(inf) = E[T]``.
        """
        t_arr = np.asarray(t, dtype=float)
        g, a = self.gamma, self.knee
        body = (a / g) * (1.0 - np.exp(-g * np.clip(t_arr, 0.0, a) / a))
        is_a = (a / g) * (1.0 - math.exp(-g))
        safe_t = np.where(t_arr > a, t_arr, a)
        tail = is_a + math.exp(-g) * a**g * (
            a ** (1.0 - g) - safe_t ** (1.0 - g)
        ) / (g - 1.0)
        out = np.where(t_arr <= a, body, tail)
        return np.where(t_arr < 0, 0.0, out)

    def equilibrium_cdf(self, t: ArrayLike) -> np.ndarray:
        """Stationary residual-life CDF ``F_e(t) = IS(t) / E[T]``."""
        return self.integrated_sf(t) / self.mean

    def equilibrium_ppf(self, u: ArrayLike) -> np.ndarray:
        """Quantile function of the equilibrium distribution.

        Piecewise inversion of :meth:`equilibrium_cdf`; the breakpoint
        is ``u_A = IS(A) / E[T]``.
        """
        u_arr = np.asarray(u, dtype=float)
        if np.any((u_arr < 0.0) | (u_arr >= 1.0)):
            raise ValueError("quantile argument must be in [0, 1)")
        g, a = self.gamma, self.knee
        mean = self.mean
        is_a = (a / g) * (1.0 - math.exp(-g))
        split = is_a / mean
        # Body: IS(t) = (A/g)(1 - e^{-g t / A}) = u * E[T]
        arg = np.clip(1.0 - np.minimum(u_arr, split) * mean * g / a, 1e-300, 1.0)
        body = -(a / g) * np.log(arg)
        # Tail: t^{1-g} = A^{1-g} - (g-1) e^{g} A^{-g} (u E[T] - IS(A))
        safe_u = np.where(u_arr > split, u_arr, split)
        t_pow = a ** (1.0 - g) - (g - 1.0) * math.exp(g) * a**-g * (
            safe_u * mean - is_a
        )
        t_pow = np.clip(t_pow, 1e-300, None)
        tail = t_pow ** (1.0 / (1.0 - g))
        return np.where(u_arr <= split, body, tail)

    # -- sampling --------------------------------------------------------------

    def sample(self, size: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``size`` i.i.d. durations by inverse-CDF sampling."""
        generator = as_generator(rng)
        return self.ppf(generator.random(size))

    def sample_equilibrium(self, size: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``size`` i.i.d. residual lives from the equilibrium law."""
        generator = as_generator(rng)
        return self.equilibrium_ppf(generator.random(size))

    def __repr__(self) -> str:
        return (
            f"HeavyTailedDuration(gamma={self.gamma:.6g}, knee={self.knee:.6g}, "
            f"mean={self.mean:.6g})"
        )
