"""Gaussian AR(1) frame-size process — the classic SRD reference model.

The paper quotes two critical-time-scale slope results (Section 4.2):
``K = 1/(c - mu)`` for a Gaussian AR(1) process [Courcoubetis &
Weber] versus ``K = H / ((1-H)(c - mu))`` for Gaussian exact-LRD
sources.  The AR(1) model here is the SRD side of that comparison; it
shares its geometric ACF (and therefore V(m) and all buffer behavior
under the Bahadur-Rao machinery) with DAR(1), while having a different
path law — a useful pair for showing that only second-order structure
matters in the analysis.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from repro.constants import FRAME_DURATION
from repro.core.variance_time import geometric_variance_time
from repro.models.base import TrafficModel, coerce_lags, stationary_gaussian_check
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_in_range, check_integer


class AR1Model(TrafficModel):
    """Stationary Gaussian AR(1): ``X_n = phi X_{n-1} + eps_n``.

    Parameters
    ----------
    phi:
        Autoregressive coefficient in (-1, 1); equals the lag-1
        autocorrelation.
    mean, variance:
        Stationary marginal parameters (cells/frame).
    """

    def __init__(
        self,
        phi: float,
        mean: float,
        variance: float,
        frame_duration: float = FRAME_DURATION,
    ):
        super().__init__(frame_duration)
        self.phi = check_in_range(phi, "phi", -1.0, 1.0)
        stationary_gaussian_check(mean, variance)
        self._mean = float(mean)
        self._variance = float(variance)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._variance

    def autocorrelation(self, lags) -> np.ndarray:
        lags_int = coerce_lags(lags)
        # Integer exponents keep negative phi exact (float exponents -> NaN).
        return np.power(self.phi, lags_int)

    def variance_time(self, m) -> np.ndarray:
        return geometric_variance_time(self._variance, self.phi, m)

    def sample_frames(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        generator = as_generator(rng)
        noise_std = np.sqrt(self._variance * (1.0 - self.phi**2))
        noise = generator.standard_normal(n_frames) * noise_std
        # Exact stationary start, then the recursion via an IIR filter.
        x0 = generator.standard_normal() * np.sqrt(self._variance)
        path = signal.lfilter(
            [1.0], [1.0, -self.phi], noise, zi=np.array([self.phi * x0])
        )[0]
        return self._mean + path

    def sample_aggregate(
        self, n_frames: int, n_sources: int, rng: RngLike = None
    ) -> np.ndarray:
        """Exact aggregate: sum of N i.i.d. Gaussian AR(1) with common phi
        is AR(1) with variance N sigma^2 (Gaussian closure)."""
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        n_sources = check_integer(n_sources, "n_sources", minimum=1)
        with self.aggregate_span(n_frames, n_sources):
            scaled = AR1Model(
                self.phi,
                n_sources * self._mean,
                n_sources * self._variance,
                self.frame_duration,
            )
            return scaled.sample_frames(n_frames, rng)

    def describe(self) -> dict:
        info = super().describe()
        info.update(phi=self.phi)
        return info
