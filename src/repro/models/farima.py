"""Fractional ARIMA(0, d, 0) — the paper's *asymptotic* LRD example.

Section 2 distinguishes asymptotic LRD (``r(k) ~ k^{-(2-2H)}`` only as
k -> infinity, Eq. (1)) from exact LRD (Eq. (2)); F-ARIMA(p, d, q) is
the cited example of the former.  The pure fractionally-differenced
process F-ARIMA(0, d, 0), ``(1 - B)^d X = eps``, has the closed-form
ACF

    ``r(k) = prod_{j=1}^{k} (j - 1 + d) / (j - d)``
          ``= Gamma(k + d) Gamma(1 - d) / (Gamma(k - d + 1) Gamma(d))``

with 0 < d < 1/2 and Hurst parameter ``H = d + 1/2``.  The product
form is evaluated in log space for numerical stability at large lags.

Sampling is exact via circulant embedding.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.constants import FRAME_DURATION
from repro.models.base import TrafficModel, coerce_lags, stationary_gaussian_check
from repro.models.gaussian import sample_stationary_gaussian
from repro.utils.rng import RngLike
from repro.utils.validation import check_in_range, check_integer


class FARIMAModel(TrafficModel):
    """F-ARIMA(0, d, 0) frame-size process with Gaussian marginal.

    Parameters
    ----------
    d:
        Fractional-differencing parameter in (0, 0.5); H = d + 0.5.
    mean, variance:
        Gaussian marginal parameters (cells/frame).
    """

    def __init__(
        self,
        d: float,
        mean: float,
        variance: float,
        frame_duration: float = FRAME_DURATION,
    ):
        super().__init__(frame_duration)
        self.d = check_in_range(d, "d", 0.0, 0.5)
        stationary_gaussian_check(mean, variance)
        self._mean = float(mean)
        self._variance = float(variance)

    @classmethod
    def from_hurst(
        cls,
        hurst: float,
        mean: float,
        variance: float,
        frame_duration: float = FRAME_DURATION,
    ) -> "FARIMAModel":
        """Construct from a target Hurst parameter in (0.5, 1)."""
        check_in_range(hurst, "hurst", 0.5, 1.0)
        return cls(hurst - 0.5, mean, variance, frame_duration)

    @property
    def hurst(self) -> float:
        return self.d + 0.5

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._variance

    def autocorrelation(self, lags) -> np.ndarray:
        """``r(k) = Gamma(k+d) Gamma(1-d) / (Gamma(k-d+1) Gamma(d))``.

        Evaluated with log-gamma to stay finite at large k, where
        ``r(k) ~ Gamma(1-d)/Gamma(d) * k^{2d-1}`` — the asymptotic
        power law of Eq. (1) with exponent 2H - 2.
        """
        lags_int = coerce_lags(lags)
        d = self.d
        k = lags_int.astype(float)
        log_r = (
            special.gammaln(k + d)
            + special.gammaln(1.0 - d)
            - special.gammaln(k - d + 1.0)
            - special.gammaln(d)
        )
        out = np.exp(log_r)
        out[lags_int == 0] = 1.0
        return out

    def sample_frames(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        acf = np.concatenate(([1.0], self.acf(n_frames - 1)))
        path = sample_stationary_gaussian(acf, n_frames, rng)
        return self._mean + np.sqrt(self._variance) * path

    def sample_aggregate(
        self, n_frames: int, n_sources: int, rng: RngLike = None
    ) -> np.ndarray:
        """Exact aggregate via Gaussian closure (same ACF, scaled variance)."""
        n_sources = check_integer(n_sources, "n_sources", minimum=1)
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        with self.aggregate_span(n_frames, n_sources):
            acf = np.concatenate(([1.0], self.acf(n_frames - 1)))
            path = sample_stationary_gaussian(acf, n_frames, rng)
            return n_sources * self._mean + np.sqrt(
                n_sources * self._variance
            ) * path

    def describe(self) -> dict:
        info = super().describe()
        info.update(d=self.d)
        return info
