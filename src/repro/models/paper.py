"""Factory for the paper's four video models: V^v, Z^a, S, and L.

Implements the parameter specification of Section 5.1 / Table 1.
Every model shares the same Gaussian frame-size marginal (mean 500
cells/frame, variance 5000) and frame rate (25 frames/sec) so that
only the correlation structure differentiates buffer behavior:

* ``Z^a``  — FBNDP(alpha = 0.8, H = 0.9) + DAR(1) with lag-1
  correlation ``a``, equal mean/variance split (v = 1).  Varying
  ``a`` changes *short-term* correlations at fixed long-term ones.
* ``V^v``  — FBNDP(alpha = 0.9) + DAR(1) with variance ratio
  ``v = sigma_X^2/sigma_Y^2`` and the DAR lag-1 correlation solved so
  all V^v share the same first-lag autocorrelation.  Varying ``v``
  changes *long-term* correlation weight at (nearly) fixed short-term
  ones.
* ``S``    — the DAR(p) matched to the first p autocorrelations of a
  given Z^a (the "simple Markov model" of claim 2).
* ``L``    — a pure FBNDP whose ACF tail best fits Z^a's (the "pure
  LRD model" of claim 2); the paper settles on alpha = 0.72.

The derivations keep ``sigma_X^2 / mu_X = 10`` for every FBNDP
component, which pins the fractal onset time T_0 independently of v —
exactly how Table 1 shows one T_0 per model family.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy import optimize

from repro.constants import (
    ALPHA_L,
    ALPHA_V,
    ALPHA_Z,
    A_V_REFERENCE,
    FRAME_DURATION,
    MEAN_FRAME_CELLS,
    M_COMPOSITE,
    M_PURE_LRD,
    VAR_FRAME_CELLS,
)
from repro.exceptions import ParameterError
from repro.models.dar import DARModel
from repro.models.dar_fitting import fit_dar
from repro.models.fbndp import FBNDPModel
from repro.models.superposition import SuperposedModel
from repro.utils.validation import check_in_range, check_integer, check_positive


def make_z(
    a: float,
    *,
    alpha: float = ALPHA_Z,
    mean: float = MEAN_FRAME_CELLS,
    variance: float = VAR_FRAME_CELLS,
    n_onoff: int = M_COMPOSITE,
    frame_duration: float = FRAME_DURATION,
) -> SuperposedModel:
    """The asymptotic-LRD model Z^a (FBNDP + DAR(1), equal split).

    ``a`` is the lag-1 correlation of the DAR(1) component — the knob
    for short-term correlations.  The FBNDP and DAR(1) components
    contribute equally to the mean and variance (v = 1), as in the
    paper's Section 3.3.
    """
    check_in_range(a, "a", 0.0, 1.0, inclusive_low=True)
    fbndp = FBNDPModel.from_statistics(
        mean / 2.0, variance / 2.0, alpha, n_onoff, frame_duration
    )
    dar = DARModel.dar1(a, mean / 2.0, variance / 2.0, frame_duration)
    return SuperposedModel((fbndp, dar))


def reference_lag1(
    *,
    alpha: float = ALPHA_V,
    a_reference: float = A_V_REFERENCE,
    mean: float = MEAN_FRAME_CELLS,
    variance: float = VAR_FRAME_CELLS,
    n_onoff: int = M_COMPOSITE,
    frame_duration: float = FRAME_DURATION,
) -> float:
    """First-lag autocorrelation of the reference model V^1 (a = 0.8)."""
    reference = make_v(
        1.0,
        a=a_reference,
        alpha=alpha,
        mean=mean,
        variance=variance,
        n_onoff=n_onoff,
        frame_duration=frame_duration,
    )
    return float(reference.autocorrelation(1)[0])


def solve_v_lag1(
    v: float,
    *,
    alpha: float = ALPHA_V,
    a_reference: float = A_V_REFERENCE,
    mean: float = MEAN_FRAME_CELLS,
    variance: float = VAR_FRAME_CELLS,
    n_onoff: int = M_COMPOSITE,
    frame_duration: float = FRAME_DURATION,
) -> float:
    """DAR(1) lag-1 correlation making V^v's r(1) equal V^1's.

    From the paper's Eq. (5), ``r(1) = [v r_X(1) + a] / (v + 1)`` and
    r_X(1) is independent of v (T_0 is pinned by the constant
    variance-to-mean ratio), so the match is linear in ``a``.
    """
    check_positive(v, "v")
    target = reference_lag1(
        alpha=alpha,
        a_reference=a_reference,
        mean=mean,
        variance=variance,
        n_onoff=n_onoff,
        frame_duration=frame_duration,
    )
    fbndp = FBNDPModel.from_statistics(
        mean * v / (1.0 + v),
        variance * v / (1.0 + v),
        alpha,
        n_onoff,
        frame_duration,
    )
    r_x1 = float(fbndp.autocorrelation(1)[0])
    a = (1.0 + v) * target - v * r_x1
    if not 0.0 <= a < 1.0:
        raise ParameterError(
            f"no feasible DAR(1) lag-1 correlation for v = {v} "
            f"(solved a = {a:.6g})"
        )
    return a


def make_v(
    v: float,
    *,
    a: Optional[float] = None,
    alpha: float = ALPHA_V,
    mean: float = MEAN_FRAME_CELLS,
    variance: float = VAR_FRAME_CELLS,
    n_onoff: int = M_COMPOSITE,
    frame_duration: float = FRAME_DURATION,
) -> SuperposedModel:
    """The asymptotic-LRD model V^v (FBNDP + DAR(1), variance ratio v).

    ``v = sigma_X^2 / sigma_Y^2`` controls the *weight* of the
    long-term (power-law) correlations.  When ``a`` is omitted, it is
    solved so the first-lag correlation equals the reference V^1's
    (the paper's construction for Fig. 3(a)).
    """
    check_positive(v, "v")
    if a is None:
        a = solve_v_lag1(
            v,
            alpha=alpha,
            mean=mean,
            variance=variance,
            n_onoff=n_onoff,
            frame_duration=frame_duration,
        )
    check_in_range(a, "a", 0.0, 1.0, inclusive_low=True)
    share = v / (1.0 + v)
    fbndp = FBNDPModel.from_statistics(
        mean * share, variance * share, alpha, n_onoff, frame_duration
    )
    dar = DARModel.dar1(
        a, mean * (1.0 - share), variance * (1.0 - share), frame_duration
    )
    return SuperposedModel((fbndp, dar))


def make_l(
    *,
    alpha: float = ALPHA_L,
    mean: float = MEAN_FRAME_CELLS,
    variance: float = VAR_FRAME_CELLS,
    n_onoff: int = M_PURE_LRD,
    frame_duration: float = FRAME_DURATION,
) -> FBNDPModel:
    """The exact-LRD model L: a pure FBNDP with Table 1's alpha = 0.72.

    M = 30 keeps the marginal near-Gaussian despite the absence of the
    DAR component.
    """
    return FBNDPModel.from_statistics(
        mean, variance, alpha, n_onoff, frame_duration
    )


def make_s(order: int, a: float, **z_kwargs) -> DARModel:
    """The Markov model S: DAR(order) matched to Z^a's first correlations."""
    order = check_integer(order, "order", minimum=1)
    return fit_dar(make_z(a, **z_kwargs), order)


def fit_l_alpha(
    target: SuperposedModel,
    *,
    lag_lo: int = 100,
    lag_hi: int = 1000,
    n_lags: int = 40,
    n_onoff: int = M_PURE_LRD,
    bounds: Tuple[float, float] = (0.4, 0.95),
) -> float:
    """Fit L's alpha so its ACF tail matches ``target``'s (Table 1 item 7).

    Minimizes the sum of squared log-ACF differences over log-spaced
    lags in [lag_lo, lag_hi].  The paper reports alpha = 0.72 for
    Z^a; because Eq. (5) halves the power-law weight (the v/(v+1)
    factor), the fitted alpha is *below* the Z component's 0.8.
    """
    lags = np.unique(
        np.round(np.geomspace(lag_lo, lag_hi, n_lags)).astype(int)
    )
    log_target = np.log(target.autocorrelation(lags))

    def objective(alpha: float) -> float:
        candidate = make_l(
            alpha=alpha,
            mean=target.mean,
            variance=target.variance,
            n_onoff=n_onoff,
            frame_duration=target.frame_duration,
        )
        log_fit = np.log(candidate.autocorrelation(lags))
        return float(np.sum((log_fit - log_target) ** 2))

    result = optimize.minimize_scalar(
        objective, bounds=bounds, method="bounded"
    )
    return float(result.x)


def table1_parameters() -> Dict[str, dict]:
    """Regenerate Table 1: the derived parameters of every model.

    Returns a mapping from model label to its parameter dict, in the
    paper's units (lambda in cells/sec, T_0 in msec).
    """
    rows: Dict[str, dict] = {}
    for v in (0.67, 1.0, 1.5):
        model = make_v(v)
        fbndp = model.components[0]
        dar = model.components[1]
        rows[f"V^{v:g}"] = {
            "v": v,
            "alpha": fbndp.alpha,
            "a": dar.rho,
            "lambda_cells_per_sec": fbndp.arrival_rate,
            "T0_msec": fbndp.onset_time * 1e3,
            "M": fbndp.n_onoff,
        }
    z_model = make_z(0.7)
    z_fbndp = z_model.components[0]
    rows["Z^a"] = {
        "v": 1.0,
        "alpha": z_fbndp.alpha,
        "a": (0.7, 0.9, 0.975, 0.99),
        "lambda_cells_per_sec": z_fbndp.arrival_rate,
        "T0_msec": z_fbndp.onset_time * 1e3,
        "M": z_fbndp.n_onoff,
    }
    l_model = make_l()
    rows["L"] = {
        "alpha": l_model.alpha,
        "lambda_cells_per_sec": l_model.arrival_rate,
        "T0_msec": l_model.onset_time * 1e3,
        "M": l_model.n_onoff,
    }
    for a in (0.7, 0.975):
        for order in (1, 2, 3):
            fitted = make_s(order, a)
            rows[f"S=DAR({order})~Z^{a:g}"] = {
                "rho": fitted.rho,
                "weights": tuple(np.round(fitted.weights, 6)),
            }
    return rows
