"""Trace-driven traffic model: run the paper's machinery on measurements.

Heyman & Lakshman and Elwalid et al. worked from *measured* VBR
videoconference traces; this model closes that loop for the library.
An :class:`EmpiricalTraceModel` wraps a :class:`~repro.io.traces.Trace`
and exposes the full :class:`~repro.models.base.TrafficModel`
interface:

* mean/variance/ACF are sample estimates (the ACF is cached up to a
  configurable maximum lag and treated as zero beyond it — beyond a
  quarter of the trace the estimates are noise anyway);
* sample paths come from a circular block bootstrap: contiguous
  blocks preserve the short-term correlation structure that — per the
  paper — is what actually matters for loss, while random block
  starts decouple the surrogate from the original phase.

Typical use: load a trace, fit DAR(p) to the model with
:func:`repro.models.fit_dar`, and compare loss predictions — the
exact workflow of the paper's Section 1 references.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.acf import sample_acf
from repro.exceptions import ParameterError
from repro.io.traces import Trace
from repro.models.base import TrafficModel, coerce_lags
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_integer


class EmpiricalTraceModel(TrafficModel):
    """A stationary model estimated from (and resampling) a trace.

    Parameters
    ----------
    trace:
        The measured frame-size sequence.
    max_lag:
        Highest lag at which the sample ACF is trusted; defaults to a
        quarter of the trace length (capped at 10,000).  Beyond it the
        ACF is taken as zero.
    block_frames:
        Bootstrap block length; defaults to ``max_lag`` (so resampled
        paths preserve all correlations the model claims to have).
    """

    def __init__(
        self,
        trace: Trace,
        *,
        max_lag: Optional[int] = None,
        block_frames: Optional[int] = None,
    ):
        super().__init__(trace.frame_duration)
        if trace.n_frames < 16:
            raise ParameterError(
                f"trace too short ({trace.n_frames} frames) to estimate "
                "second-order statistics"
            )
        self.trace = trace
        if max_lag is None:
            max_lag = min(trace.n_frames // 4, 10_000)
        self.max_lag = check_integer(
            max_lag, "max_lag", minimum=1, maximum=trace.n_frames - 1
        )
        if block_frames is None:
            block_frames = self.max_lag
        self.block_frames = check_integer(
            block_frames, "block_frames", minimum=1
        )
        self._acf = sample_acf(trace.frames, self.max_lag)

    # -- statistics -------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.trace.mean

    @property
    def variance(self) -> float:
        return self.trace.variance

    def autocorrelation(self, lags) -> np.ndarray:
        lags_int = coerce_lags(lags)
        out = np.zeros(lags_int.shape)
        out[lags_int == 0] = 1.0
        in_range = (lags_int >= 1) & (lags_int <= self.max_lag)
        out[in_range] = self._acf[lags_int[in_range] - 1]
        return out

    @property
    def hurst(self) -> float:
        """Aggregated-variance Hurst estimate of the trace (clipped)."""
        from repro.analysis.hurst import aggregated_variance_hurst

        estimate = aggregated_variance_hurst(self.trace.frames)
        return float(np.clip(estimate.hurst, 0.01, 0.99))

    # -- sampling -----------------------------------------------------------------

    def sample_frames(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        """Circular block bootstrap of the trace."""
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        generator = as_generator(rng)
        data = self.trace.frames
        n = data.shape[0]
        block = min(self.block_frames, n)
        n_blocks = -(-n_frames // block)  # ceil
        starts = generator.integers(0, n, size=n_blocks)
        pieces = [
            np.take(data, np.arange(s, s + block), mode="wrap")
            for s in starts
        ]
        return np.concatenate(pieces)[:n_frames]

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            n_frames=self.trace.n_frames,
            max_lag=self.max_lag,
            block_frames=self.block_frames,
            name=self.trace.name,
        )
        return info
