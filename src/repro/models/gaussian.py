"""Exact sampling of stationary Gaussian processes from their ACF.

Implements the Davies-Harte / circulant-embedding method: embed the
(n x n) Toeplitz covariance into a (2n x 2n) circulant matrix, whose
eigenvalues are the FFT of the first row; when those eigenvalues are
non-negative (true for fGn and F-ARIMA covariances), the circulant
square root turns 2n i.i.d. Gaussians into an *exact* draw of the
process — O(n log n), no approximation.

Used by :class:`repro.models.fgn.FGNModel` and
:class:`repro.models.farima.FARIMAModel`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_integer

#: Relative tolerance for accepting tiny negative circulant eigenvalues
#: (floating-point noise on an exactly non-negative spectrum).
_EIGENVALUE_TOLERANCE = 1e-8


def sample_stationary_gaussian(
    acf: np.ndarray, n: int, rng: RngLike = None
) -> np.ndarray:
    """Draw an exact standard (zero-mean, unit-variance) stationary path.

    Parameters
    ----------
    acf:
        Autocovariances ``[r(0), r(1), ..., r(n-1)]`` with r(0) = 1.
        (Pass lag 0 here, unlike the model-level ``acf()`` helper.)
    n:
        Number of samples to return.
    rng:
        Seed or generator.

    Raises
    ------
    SimulationError
        If the circulant embedding is not non-negative definite (the
        supplied ACF is not extendable by this method).
    """
    n = check_integer(n, "n", minimum=1)
    r = np.asarray(acf, dtype=float)
    if r.shape[0] < n:
        raise ValueError(f"need {n} autocovariances, got {r.shape[0]}")
    if not np.isclose(r[0], 1.0):
        raise ValueError(f"acf[0] must be 1 (unit variance), got {r[0]!r}")
    generator = as_generator(rng)

    # First row of the circulant embedding: r(0..n-1), r(n-2..1) mirrored.
    if n == 1:
        return generator.standard_normal(1)
    first_row = np.concatenate((r[:n], r[n - 2 : 0 : -1]))
    eigenvalues = np.fft.rfft(first_row).real
    floor = -_EIGENVALUE_TOLERANCE * float(np.abs(eigenvalues).max())
    if np.any(eigenvalues < floor):
        raise SimulationError(
            "circulant embedding has negative eigenvalues "
            f"(min = {eigenvalues.min():.3g}); the ACF is not "
            "representable — increase n or check the model"
        )
    eigenvalues = np.clip(eigenvalues, 0.0, None)

    m = first_row.shape[0]
    # Complex Gaussian synthesis: real/imag parts i.i.d. N(0, 1/2) except
    # at the self-conjugate frequencies (0 and Nyquist), which are real
    # with unit variance.
    n_freq = eigenvalues.shape[0]
    real = generator.standard_normal(n_freq)
    imag = generator.standard_normal(n_freq)
    spectrum = (real + 1j * imag) / np.sqrt(2.0)
    spectrum[0] = real[0]
    if m % 2 == 0:
        spectrum[-1] = real[-1]
    # X_j = (1/sqrt(m)) sum_k sqrt(lam_k) W_k e^{2 pi i j k / m}; with
    # S_k = sqrt(lam_k m) W_k, numpy's irfft (which scales by 1/m)
    # returns exactly X.
    spectrum *= np.sqrt(eigenvalues * m)
    return np.fft.irfft(spectrum, n=m)[:n]


def spectral_check(acf: np.ndarray) -> float:
    """Minimum circulant eigenvalue for a given ACF (diagnostic).

    Positive values mean :func:`sample_stationary_gaussian` will accept
    the ACF at this length.
    """
    r = np.asarray(acf, dtype=float)
    if r.shape[0] < 2:
        return float(r[0]) if r.size else 0.0
    first_row = np.concatenate((r, r[-2:0:-1]))
    return float(np.fft.rfft(first_row).real.min())
