"""GOP-periodic MPEG video model — the paper's stated future work.

Section 6.2 closes with: "Further work is currently under way on
finding CTS of various types of traffic sources including MPEG-coded
video."  MPEG group-of-pictures (GOP) coding makes frame sizes
*cyclostationary*: I frames are several times larger than P frames,
which are larger than B frames, with the pattern repeating every GOP
(classically IBBPBBPBBPBB, length 12).

This module implements the standard randomized-phase product model:

    ``X_n = p_{(n + phi) mod L} * Y_n``

where ``p`` is the relative GOP size pattern (normalized to mean 1),
``phi`` is a uniform random phase (which restores wide-sense
stationarity), and ``Y`` is any stationary :class:`TrafficModel`
(e.g. the paper's LRD composite Z^a) supplying the scene-level
dynamics.  The second-order statistics are exact:

* ``E[X] = mu_Y``
* ``E[X^2] = mean(p^2) * E[Y^2]``   (phi independent of Y)
* ``Cov(X_n, X_{n+k}) = R_p(k) (C_Y(k) + mu_Y^2) - mu_Y^2``

with ``R_p(k) = (1/L) sum_j p_j p_{(j+k) mod L}`` the circular pattern
correlation — a periodic ripple multiplying the modulator's decay,
which is precisely the ACF shape measured on MPEG traces.  Because
the ACF is exact, the whole CTS/Bahadur-Rao machinery applies
unchanged, answering the paper's open question for this model class.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ParameterError
from repro.models.base import TrafficModel, coerce_lags
from repro.utils.rng import RngLike, as_generator, spawn_generators
from repro.utils.validation import check_integer

#: The classic GOP structure: I BB P BB P BB P BB (display order
#: IBBPBBPBBPBB), with typical relative sizes I:P:B = 5:2:1.
CLASSIC_GOP = (5.0, 1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 1.0, 1.0)


class MPEGModel(TrafficModel):
    """Randomized-phase GOP modulation of a stationary base model.

    Parameters
    ----------
    modulator:
        The stationary process Y supplying scene dynamics; the MPEG
        model inherits its mean.  Use e.g. ``make_z(0.975)`` for an
        LRD MPEG source or a DAR(1) for an SRD one.
    pattern:
        Relative frame sizes over one GOP; internally normalized to
        mean 1 so the modulator's mean is preserved.
    aligned_phases:
        When false (default), each multiplexed source draws its own
        GOP phase, so :meth:`sample_aggregate` really is a sum of
        i.i.d. copies — the assumption behind the Bahadur-Rao
        analysis.  When true, every source shares one phase
        (GOP-synchronous multiplexing): a *different*, pessimistic
        scenario in which sources are dependent and the aggregate
        variance grows like N^2; use it only for worst-case studies,
        not with the i.i.d. asymptotics.
    """

    def __init__(
        self,
        modulator: TrafficModel,
        pattern: Sequence[float] = CLASSIC_GOP,
        *,
        aligned_phases: bool = False,
    ):
        super().__init__(modulator.frame_duration)
        pattern_arr = np.asarray(pattern, dtype=float)
        if pattern_arr.ndim != 1 or pattern_arr.size < 2:
            raise ParameterError("pattern must be 1-D with length >= 2")
        if np.any(pattern_arr <= 0):
            raise ParameterError("pattern entries must be positive")
        self.pattern = pattern_arr / pattern_arr.mean()
        self.modulator = modulator
        self.aligned_phases = bool(aligned_phases)

    @property
    def gop_length(self) -> int:
        """GOP length L (frames)."""
        return int(self.pattern.shape[0])

    def pattern_correlation(self, lags) -> np.ndarray:
        """Circular pattern correlation ``R_p(k)``, period L."""
        lags_int = coerce_lags(lags)
        shifted = (lags_int % self.gop_length).astype(np.int64)
        p = self.pattern
        table = np.array(
            [float(np.dot(p, np.roll(p, -k))) / p.shape[0]
             for k in range(self.gop_length)]
        )
        return table[shifted]

    # -- statistics --------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.modulator.mean

    @property
    def variance(self) -> float:
        mu = self.modulator.mean
        second_moment = self.modulator.variance + mu**2
        return float(self.pattern_correlation(0)[0] * second_moment - mu**2)

    @property
    def hurst(self) -> float:
        """The periodic modulation does not change the correlation tail."""
        return self.modulator.hurst

    def autocorrelation(self, lags) -> np.ndarray:
        lags_int = coerce_lags(lags)
        mu = self.modulator.mean
        autocov_y = (
            self.modulator.variance * self.modulator.autocorrelation(lags_int)
        )
        covariance = (
            self.pattern_correlation(lags_int) * (autocov_y + mu**2) - mu**2
        )
        return covariance / self.variance

    # -- sampling ------------------------------------------------------------------

    def sample_frames(self, n_frames: int, rng: RngLike = None) -> np.ndarray:
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        generator = as_generator(rng)
        phase = int(generator.integers(self.gop_length))
        base = self.modulator.sample_frames(n_frames, generator)
        gains = self.pattern[(np.arange(n_frames) + phase) % self.gop_length]
        return gains * base

    def sample_aggregate(
        self, n_frames: int, n_sources: int, rng: RngLike = None
    ) -> np.ndarray:
        n_frames = check_integer(n_frames, "n_frames", minimum=1)
        n_sources = check_integer(n_sources, "n_sources", minimum=1)
        with self.aggregate_span(n_frames, n_sources):
            generator = as_generator(rng)
            if self.aligned_phases:
                # GOP-synchronous sources share the gain sequence, so the
                # aggregate is the pattern times the modulator aggregate —
                # which may use the modulator's own superposition closure.
                # NOTE: this models *dependent* sources; see class docs.
                phase = int(generator.integers(self.gop_length))
                base = self.modulator.sample_aggregate(
                    n_frames, n_sources, generator
                )
                gains = self.pattern[
                    (np.arange(n_frames) + phase) % self.gop_length
                ]
                return gains * base
            total = np.zeros(n_frames)
            for source_rng in spawn_generators(generator, n_sources):
                total += self.sample_frames(n_frames, source_rng)
            return total

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            gop_length=self.gop_length,
            pattern=tuple(np.round(self.pattern, 6)),
            aligned_phases=self.aligned_phases,
            modulator=self.modulator.describe(),
        )
        return info
