"""VBR video traffic models (paper Sections 2, 3 and 5.1).

Exports the model classes and the Table 1 factory functions.
"""

from repro.models.ar1 import AR1Model
from repro.models.base import TrafficModel
from repro.models.dar import DARModel
from repro.models.dar_fitting import fit_dar, fitted_acf_error, solve_dar_parameters
from repro.models.farima import FARIMAModel
from repro.models.fbndp import (
    FBNDPModel,
    fractal_onoff_occupancy,
    knee_from_onset_time,
    onset_time_from_physical,
)
from repro.models.fgn import FGNModel
from repro.models.gaussian import sample_stationary_gaussian, spectral_check
from repro.models.heavy_tail import HeavyTailedDuration
from repro.models.marginals import (
    GaussianMarginal,
    LognormalMarginal,
    Marginal,
    NegativeBinomialMarginal,
)
from repro.models.markov_source import MarkovModulatedSource
from repro.models.mginf import MGInfModel
from repro.models.mpeg import CLASSIC_GOP, MPEGModel
from repro.models.paper import (
    fit_l_alpha,
    make_l,
    make_s,
    make_v,
    make_z,
    reference_lag1,
    solve_v_lag1,
    table1_parameters,
)
from repro.models.superposition import SuperposedModel

__all__ = [
    "AR1Model",
    "CLASSIC_GOP",
    "DARModel",
    "FARIMAModel",
    "FBNDPModel",
    "FGNModel",
    "GaussianMarginal",
    "HeavyTailedDuration",
    "LognormalMarginal",
    "MGInfModel",
    "MPEGModel",
    "Marginal",
    "MarkovModulatedSource",
    "NegativeBinomialMarginal",
    "SuperposedModel",
    "TrafficModel",
    "fit_dar",
    "fit_l_alpha",
    "fitted_acf_error",
    "fractal_onoff_occupancy",
    "knee_from_onset_time",
    "make_l",
    "make_s",
    "make_v",
    "make_z",
    "onset_time_from_physical",
    "reference_lag1",
    "sample_stationary_gaussian",
    "solve_dar_parameters",
    "solve_v_lag1",
    "spectral_check",
    "table1_parameters",
]
